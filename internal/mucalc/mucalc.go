// Package mucalc implements the propositional µ-calculus Lµ and its
// embedding into two-variable fixpoint logic, the verification application
// of §1 of Vardi (PODS 1995):
//
//	A finite-state program is a relational database of unary and binary
//	relations (a Kripke structure); verifying that it satisfies an Lµ
//	specification amounts to evaluating the specification as an FP² query.
//
// The package provides Kripke structures, Lµ syntax in positive normal
// form, a direct fixpoint-semantics model checker (the oracle), the
// translation into FP² (width 2, alternation depth preserved), and
// certificate-based checking through eval.FindCertificate/VerifyCertificate
// — which realizes the paper's NP∩co-NP bound for µ-calculus model checking
// via Theorem 3.5 instead of tree automata.
package mucalc

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/database"
)

// Kripke is a finite-state transition system with propositional labels.
type Kripke struct {
	n     int
	succ  [][]int
	props map[string]*bitset.Set
}

// NewKripke returns a structure with n states and no transitions.
func NewKripke(n int) *Kripke {
	if n < 0 {
		panic(fmt.Sprintf("mucalc: negative state count %d", n))
	}
	return &Kripke{n: n, succ: make([][]int, n), props: make(map[string]*bitset.Set)}
}

// States returns the number of states.
func (k *Kripke) States() int { return k.n }

// AddEdge adds a transition s → t.
func (k *Kripke) AddEdge(s, t int) error {
	if s < 0 || s >= k.n || t < 0 || t >= k.n {
		return fmt.Errorf("mucalc: edge (%d,%d) outside %d states", s, t, k.n)
	}
	k.succ[s] = append(k.succ[s], t)
	return nil
}

// Label marks proposition p true in state s.
func (k *Kripke) Label(s int, p string) error {
	if s < 0 || s >= k.n {
		return fmt.Errorf("mucalc: state %d outside %d states", s, k.n)
	}
	if p == "" {
		return fmt.Errorf("mucalc: empty proposition name")
	}
	set, ok := k.props[p]
	if !ok {
		set = bitset.New(k.n)
		k.props[p] = set
	}
	set.Set(s)
	return nil
}

// Holds reports whether proposition p is true in state s.
func (k *Kripke) Holds(s int, p string) bool {
	set, ok := k.props[p]
	return ok && set.Test(s)
}

// Succ returns the successors of s. The slice must not be mutated.
func (k *Kripke) Succ(s int) []int { return k.succ[s] }

// Props returns the proposition names in sorted order.
func (k *Kripke) Props() []string {
	out := make([]string, 0, len(k.props))
	for p := range k.props {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ToDatabase renders the structure as the paper's database view: a binary
// transition relation E and one unary relation per proposition. Extra
// proposition names (e.g. mentioned by a formula but labeling no state) are
// declared as empty relations.
func (k *Kripke) ToDatabase(extraProps ...string) (*database.Database, error) {
	b := database.NewBuilder().Relation("E", 2)
	for s := 0; s < k.n; s++ {
		b.Domain(s)
	}
	for s := 0; s < k.n; s++ {
		for _, t := range k.succ[s] {
			b.Add("E", s, t)
		}
	}
	for _, p := range k.Props() {
		b.Relation(p, 1)
		k.props[p].ForEach(func(s int) { b.Add(p, s) })
	}
	for _, p := range extraProps {
		b.Relation(p, 1)
	}
	return b.Build()
}

// PropsOf returns the proposition names mentioned in f, sorted.
func PropsOf(f Formula) []string {
	seen := make(map[string]bool)
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Prop:
			seen[g.Name] = true
		case NegProp:
			seen[g.Name] = true
		case Lit, VarRef:
		case Conj:
			walk(g.L)
			walk(g.R)
		case Disj:
			walk(g.L)
			walk(g.R)
		case Diamond:
			walk(g.F)
		case Box:
			walk(g.F)
		case Mu:
			walk(g.F)
		case Nu:
			walk(g.F)
		}
	}
	walk(f)
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Formula is an Lµ formula in positive normal form: negation applies to
// propositions only. The node types are Prop, NegProp, Lit (constants),
// VarRef, Conj, Disj, Diamond, Box, Mu and Nu.
type Formula interface {
	isMu()
	String() string
}

// Prop is an atomic proposition.
type Prop struct{ Name string }

// NegProp is a negated atomic proposition.
type NegProp struct{ Name string }

// Lit is a propositional constant.
type Lit struct{ Value bool }

// VarRef is a fixpoint variable occurrence.
type VarRef struct{ Name string }

// Conj is conjunction.
type Conj struct{ L, R Formula }

// Disj is disjunction.
type Disj struct{ L, R Formula }

// Diamond is ◇φ: some successor satisfies φ.
type Diamond struct{ F Formula }

// Box is □φ: every successor satisfies φ.
type Box struct{ F Formula }

// Mu is the least fixpoint µX.φ.
type Mu struct {
	Var string
	F   Formula
}

// Nu is the greatest fixpoint νX.φ.
type Nu struct {
	Var string
	F   Formula
}

func (Prop) isMu()    {}
func (NegProp) isMu() {}
func (Lit) isMu()     {}
func (VarRef) isMu()  {}
func (Conj) isMu()    {}
func (Disj) isMu()    {}
func (Diamond) isMu() {}
func (Box) isMu()     {}
func (Mu) isMu()      {}
func (Nu) isMu()      {}

func (f Prop) String() string    { return f.Name }
func (f NegProp) String() string { return "!" + f.Name }
func (f Lit) String() string {
	if f.Value {
		return "tt"
	}
	return "ff"
}
func (f VarRef) String() string { return f.Name }
func (f Conj) String() string   { return "(" + f.L.String() + " & " + f.R.String() + ")" }
func (f Disj) String() string   { return "(" + f.L.String() + " | " + f.R.String() + ")" }
func (f Diamond) String() string {
	return "<>" + f.F.String()
}
func (f Box) String() string { return "[]" + f.F.String() }
func (f Mu) String() string  { return "(mu " + f.Var + ". " + f.F.String() + ")" }
func (f Nu) String() string  { return "(nu " + f.Var + ". " + f.F.String() + ")" }

// Validate checks that every variable reference is bound by an enclosing
// fixpoint and no variable is bound twice on a path.
func Validate(f Formula) error {
	return validate(f, map[string]bool{})
}

func validate(f Formula, bound map[string]bool) error {
	switch g := f.(type) {
	case Prop, NegProp, Lit:
		return nil
	case VarRef:
		if !bound[g.Name] {
			return fmt.Errorf("mucalc: unbound variable %s", g.Name)
		}
		return nil
	case Conj:
		if err := validate(g.L, bound); err != nil {
			return err
		}
		return validate(g.R, bound)
	case Disj:
		if err := validate(g.L, bound); err != nil {
			return err
		}
		return validate(g.R, bound)
	case Diamond:
		return validate(g.F, bound)
	case Box:
		return validate(g.F, bound)
	case Mu:
		return validateBinder(g.Var, g.F, bound)
	case Nu:
		return validateBinder(g.Var, g.F, bound)
	default:
		return fmt.Errorf("mucalc: unknown formula %T", f)
	}
}

func validateBinder(v string, body Formula, bound map[string]bool) error {
	if v == "" {
		return fmt.Errorf("mucalc: empty fixpoint variable")
	}
	if bound[v] {
		return fmt.Errorf("mucalc: variable %s bound twice", v)
	}
	bound[v] = true
	err := validate(body, bound)
	delete(bound, v)
	return err
}

// AlternationDepth returns the syntactic µ/ν alternation depth: nested
// same-polarity fixpoints count once, each µ/ν polarity switch on a nesting
// path adds one. A formula without fixpoints has depth 0.
//
// The syntactic count over-approximates the semantic (Emerson–Lei)
// alternation depth: an inner fixpoint that does not use the outer
// fixpoint's variable is independent of its iteration and does not truly
// alternate. See DependentAlternationDepth.
func AlternationDepth(f Formula) int {
	return altDepth(f, 0, 0)
}

// DependentAlternationDepth returns the Emerson–Lei alternation depth:
// an opposite-polarity fixpoint nested inside σX.φ adds a level only if X
// occurs free in it. CTL translations, for example, have dependent depth
// ≤ 1 however deeply their closed fixpoints nest.
func DependentAlternationDepth(f Formula) int {
	switch g := f.(type) {
	case Prop, NegProp, Lit, VarRef:
		return 0
	case Conj:
		return max2(DependentAlternationDepth(g.L), DependentAlternationDepth(g.R))
	case Disj:
		return max2(DependentAlternationDepth(g.L), DependentAlternationDepth(g.R))
	case Diamond:
		return DependentAlternationDepth(g.F)
	case Box:
		return DependentAlternationDepth(g.F)
	case Mu:
		return fixDepDepth(g.Var, true, g.F)
	case Nu:
		return fixDepDepth(g.Var, false, g.F)
	default:
		return 0
	}
}

// fixDepDepth computes the dependent depth of a fixpoint binding v with the
// given polarity (isMu) and body.
func fixDepDepth(v string, isMu bool, body Formula) int {
	d := 1
	var walk func(f Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Prop, NegProp, Lit, VarRef:
		case Conj:
			walk(g.L)
			walk(g.R)
		case Disj:
			walk(g.L)
			walk(g.R)
		case Diamond:
			walk(g.F)
		case Box:
			walk(g.F)
		case Mu:
			sub := fixDepDepth(g.Var, true, g.F)
			if !isMu && varFreeIn(v, g) {
				sub++
			}
			if sub > d {
				d = sub
			}
		case Nu:
			sub := fixDepDepth(g.Var, false, g.F)
			if isMu && varFreeIn(v, g) {
				sub++
			}
			if sub > d {
				d = sub
			}
		}
	}
	walk(body)
	return d
}

// varFreeIn reports whether the fixpoint variable v occurs free in f.
func varFreeIn(v string, f Formula) bool {
	switch g := f.(type) {
	case VarRef:
		return g.Name == v
	case Prop, NegProp, Lit:
		return false
	case Conj:
		return varFreeIn(v, g.L) || varFreeIn(v, g.R)
	case Disj:
		return varFreeIn(v, g.L) || varFreeIn(v, g.R)
	case Diamond:
		return varFreeIn(v, g.F)
	case Box:
		return varFreeIn(v, g.F)
	case Mu:
		return g.Var != v && varFreeIn(v, g.F)
	case Nu:
		return g.Var != v && varFreeIn(v, g.F)
	default:
		return false
	}
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// altDepth computes the depth given the innermost enclosing fixpoint kind
// (0 none, 1 µ, 2 ν) and the alternation count accumulated so far.
func altDepth(f Formula, enclosing, depth int) int {
	best := depth
	upd := func(d int) {
		if d > best {
			best = d
		}
	}
	switch g := f.(type) {
	case Prop, NegProp, Lit, VarRef:
	case Conj:
		upd(altDepth(g.L, enclosing, depth))
		upd(altDepth(g.R, enclosing, depth))
	case Disj:
		upd(altDepth(g.L, enclosing, depth))
		upd(altDepth(g.R, enclosing, depth))
	case Diamond:
		upd(altDepth(g.F, enclosing, depth))
	case Box:
		upd(altDepth(g.F, enclosing, depth))
	case Mu:
		d := depth
		if enclosing != 1 {
			d++
		}
		upd(d)
		upd(altDepth(g.F, 1, d))
	case Nu:
		d := depth
		if enclosing != 2 {
			d++
		}
		upd(d)
		upd(altDepth(g.F, 2, d))
	}
	return best
}

// Strings for common specification patterns.

// EF is "possibly φ": µX. φ ∨ ◇X.
func EF(f Formula) Formula { return Mu{Var: "Xef", F: Disj{L: f, R: Diamond{F: VarRef{"Xef"}}}} }

// AG is "invariantly φ": νX. φ ∧ □X.
func AG(f Formula) Formula { return Nu{Var: "Xag", F: Conj{L: f, R: Box{F: VarRef{"Xag"}}}} }

// EG is "some path forever φ": νX. φ ∧ ◇X.
func EG(f Formula) Formula { return Nu{Var: "Xeg", F: Conj{L: f, R: Diamond{F: VarRef{"Xeg"}}}} }

// AF is "inevitably φ": µX. φ ∨ □X... note □ on a deadlocked state is
// vacuously true, matching the standard convention.
func AF(f Formula) Formula { return Mu{Var: "Xaf", F: Disj{L: f, R: boxNonEmpty()}} }

func boxNonEmpty() Formula {
	// AF needs "all successors in X and at least one successor" to avoid
	// deadlocked states satisfying AF vacuously.
	return Conj{L: Diamond{F: Lit{true}}, R: Box{F: VarRef{"Xaf"}}}
}

// InfinitelyOften is "along some path, φ holds infinitely often":
// νX. µY. ◇((φ ∧ X) ∨ Y) — the classic alternation-depth-2 property.
func InfinitelyOften(f Formula) Formula {
	return Nu{Var: "Xio", F: Mu{Var: "Yio",
		F: Diamond{F: Disj{L: Conj{L: f, R: VarRef{"Xio"}}, R: VarRef{"Yio"}}}}}
}
