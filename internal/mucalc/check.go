package mucalc

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Check computes the set of states satisfying f, by the direct fixpoint
// semantics of the µ-calculus (naive nested iteration — the oracle against
// which the FP² route is validated).
func Check(k *Kripke, f Formula) (*bitset.Set, error) {
	if err := Validate(f); err != nil {
		return nil, err
	}
	return check(k, f, map[string]*bitset.Set{})
}

// Holds reports whether state s satisfies f.
func Holds(k *Kripke, s int, f Formula) (bool, error) {
	set, err := Check(k, f)
	if err != nil {
		return false, err
	}
	return set.Test(s), nil
}

func check(k *Kripke, f Formula, env map[string]*bitset.Set) (*bitset.Set, error) {
	switch g := f.(type) {
	case Prop:
		if set, ok := k.props[g.Name]; ok {
			return set.Clone(), nil
		}
		return bitset.New(k.n), nil
	case NegProp:
		set := bitset.New(k.n)
		if p, ok := k.props[g.Name]; ok {
			set.Copy(p)
		}
		set.Not()
		return set, nil
	case Lit:
		if g.Value {
			return bitset.Full(k.n), nil
		}
		return bitset.New(k.n), nil
	case VarRef:
		set, ok := env[g.Name]
		if !ok {
			return nil, fmt.Errorf("mucalc: unbound variable %s", g.Name)
		}
		return set.Clone(), nil
	case Conj:
		l, err := check(k, g.L, env)
		if err != nil {
			return nil, err
		}
		r, err := check(k, g.R, env)
		if err != nil {
			return nil, err
		}
		l.And(r)
		return l, nil
	case Disj:
		l, err := check(k, g.L, env)
		if err != nil {
			return nil, err
		}
		r, err := check(k, g.R, env)
		if err != nil {
			return nil, err
		}
		l.Or(r)
		return l, nil
	case Diamond:
		sub, err := check(k, g.F, env)
		if err != nil {
			return nil, err
		}
		return k.preExists(sub), nil
	case Box:
		sub, err := check(k, g.F, env)
		if err != nil {
			return nil, err
		}
		return k.preForall(sub), nil
	case Mu:
		cur := bitset.New(k.n)
		for {
			env[g.Var] = cur
			next, err := check(k, g.F, env)
			if err != nil {
				delete(env, g.Var)
				return nil, err
			}
			if next.Equal(cur) {
				delete(env, g.Var)
				return cur, nil
			}
			cur = next
		}
	case Nu:
		cur := bitset.Full(k.n)
		for {
			env[g.Var] = cur
			next, err := check(k, g.F, env)
			if err != nil {
				delete(env, g.Var)
				return nil, err
			}
			if next.Equal(cur) {
				delete(env, g.Var)
				return cur, nil
			}
			cur = next
		}
	default:
		return nil, fmt.Errorf("mucalc: unknown formula %T", f)
	}
}

// preExists is ◇: states with some successor in target.
func (k *Kripke) preExists(target *bitset.Set) *bitset.Set {
	out := bitset.New(k.n)
	for s := 0; s < k.n; s++ {
		for _, t := range k.succ[s] {
			if target.Test(t) {
				out.Set(s)
				break
			}
		}
	}
	return out
}

// preForall is □: states all of whose successors are in target.
func (k *Kripke) preForall(target *bitset.Set) *bitset.Set {
	out := bitset.New(k.n)
	for s := 0; s < k.n; s++ {
		all := true
		for _, t := range k.succ[s] {
			if !target.Test(t) {
				all = false
				break
			}
		}
		if all {
			out.Set(s)
		}
	}
	return out
}

// ToFP2 translates f into a two-variable fixpoint formula with one free
// variable x, over the database view of a Kripke structure (binary E, unary
// propositions). The translation is the §1 embedding Lµ ⊂ FP²: modalities
// become quantification over successors with variable reuse, fixpoints map
// to unary lfp/gfp operators, and the alternation depth is preserved.
func ToFP2(f Formula) (logic.Formula, error) {
	if err := Validate(f); err != nil {
		return nil, err
	}
	return toFP2(f)
}

func toFP2(f Formula) (logic.Formula, error) {
	const x, y = logic.Var("x"), logic.Var("y")
	switch g := f.(type) {
	case Prop:
		return logic.R(g.Name, x), nil
	case NegProp:
		return logic.Neg(logic.R(g.Name, x)), nil
	case Lit:
		return logic.Truth{Value: g.Value}, nil
	case VarRef:
		return logic.R(g.Name, x), nil
	case Conj:
		l, err := toFP2(g.L)
		if err != nil {
			return nil, err
		}
		r, err := toFP2(g.R)
		if err != nil {
			return nil, err
		}
		return logic.And(l, r), nil
	case Disj:
		l, err := toFP2(g.L)
		if err != nil {
			return nil, err
		}
		r, err := toFP2(g.R)
		if err != nil {
			return nil, err
		}
		return logic.Or(l, r), nil
	case Diamond:
		sub, err := toFP2(g.F)
		if err != nil {
			return nil, err
		}
		// ∃y (E(x,y) ∧ ∃x (x=y ∧ φ(x))) — reuse of x keeps the width at 2.
		return logic.Exists(logic.And(logic.R("E", x, y),
			logic.Exists(logic.And(logic.Equal(x, y), sub), x)), y), nil
	case Box:
		sub, err := toFP2(g.F)
		if err != nil {
			return nil, err
		}
		// ∀y (E(x,y) → ∃x (x=y ∧ φ(x)))
		return logic.Forall(logic.Implies(logic.R("E", x, y),
			logic.Exists(logic.And(logic.Equal(x, y), sub), x)), y), nil
	case Mu:
		sub, err := toFP2(g.F)
		if err != nil {
			return nil, err
		}
		return logic.Lfp(g.Var, []logic.Var{x}, sub, x), nil
	case Nu:
		sub, err := toFP2(g.F)
		if err != nil {
			return nil, err
		}
		return logic.Gfp(g.Var, []logic.Var{x}, sub, x), nil
	default:
		return nil, fmt.Errorf("mucalc: unknown formula %T", f)
	}
}

// FP2Query wraps the translation as the query (x). tr(f).
func FP2Query(f Formula) (logic.Query, error) {
	body, err := ToFP2(f)
	if err != nil {
		return logic.Query{}, err
	}
	return logic.NewQuery([]logic.Var{"x"}, body)
}

// CheckViaFP2 model-checks by translating to FP² and evaluating the query
// bottom-up against the database view of the structure.
func CheckViaFP2(k *Kripke, f Formula) (*bitset.Set, error) {
	q, err := FP2Query(f)
	if err != nil {
		return nil, err
	}
	db, err := k.ToDatabase(PropsOf(f)...)
	if err != nil {
		return nil, err
	}
	ans, err := eval.BottomUp(q, db)
	if err != nil {
		return nil, err
	}
	return answerToStates(k, db, ans)
}

// CheckCertified model-checks through the Theorem 3.5 route: the prover
// finds a certificate for the FP² query and the polynomial verifier replays
// it. Both the certificate and the verified state set are returned.
func CheckCertified(k *Kripke, f Formula) (*bitset.Set, *eval.Certificate, error) {
	q, err := FP2Query(f)
	if err != nil {
		return nil, nil, err
	}
	db, err := k.ToDatabase(PropsOf(f)...)
	if err != nil {
		return nil, nil, err
	}
	cert, res, err := eval.FindCertificate(q, db)
	if err != nil {
		return nil, nil, err
	}
	ver, err := eval.VerifyCertificate(q, db, cert)
	if err != nil {
		return nil, nil, err
	}
	if !ver.Answer.Equal(res.Answer) {
		return nil, nil, fmt.Errorf("mucalc: verified answer differs from prover answer")
	}
	states, err := answerToStates(k, db, ver.Answer)
	if err != nil {
		return nil, nil, err
	}
	return states, cert, nil
}

func answerToStates(k *Kripke, db *database.Database, ans *relation.Set) (*bitset.Set, error) {
	if ans.Arity() != 1 {
		return nil, fmt.Errorf("mucalc: answer arity %d, want 1", ans.Arity())
	}
	out := bitset.New(k.n)
	ans.ForEach(func(t relation.Tuple) {
		out.Set(db.Value(t[0]))
	})
	return out, nil
}
