package sat

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `
c an example
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 3 {
		t.Fatalf("parsed %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
	res, err := Solve(f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SAT {
		t.Fatal("instance should be SAT (x1=false, x2=?, x3=true)")
	}
	if !f.Eval(res.Model) {
		t.Fatal("model does not satisfy instance")
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 2 1\n1\n2 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 2 {
		t.Fatalf("clauses = %v", f.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	bad := []string{
		"",
		"1 2 0",                    // clause before header
		"p cnf x 1\n1 0",           // bad var count
		"p cnf 2 -1\n1 0",          // bad clause count
		"p dnf 2 1\n1 0",           // wrong format tag
		"p cnf 2 1\n1 z 0",         // bad literal
		"p cnf 2 1\n1 2",           // unterminated clause
		"p cnf 2 1\n3 0",           // literal beyond declared vars
		"p cnf 2 1\n1 0\n2 0",      // more clauses than declared
		"p cnf 2 1\np cnf 2 1\n10", // duplicate header
	}
	for _, s := range bad {
		if _, err := ParseDIMACS(strings.NewReader(s)); err == nil {
			t.Errorf("ParseDIMACS(%q) succeeded", s)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(8)
		f := NewCNF(n)
		for i := 0; i < 3*n; i++ {
			var lits []Lit
			for j := 0; j < 1+r.Intn(3); j++ {
				l := Lit(1 + r.Intn(n))
				if r.Intn(2) == 0 {
					l = l.Neg()
				}
				lits = append(lits, l)
			}
			f.MustAdd(lits...)
		}
		var sb strings.Builder
		if err := f.WriteDIMACS(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := ParseDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip parse: %v\n%s", err, sb.String())
		}
		a, err := Solve(f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(back)
		if err != nil {
			t.Fatal(err)
		}
		if a.SAT != b.SAT {
			t.Fatalf("round trip changed satisfiability")
		}
	}
}
