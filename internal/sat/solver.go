package sat

import (
	"fmt"
)

// Result is the outcome of a Solve call.
type Result struct {
	SAT bool
	// Model is the satisfying assignment when SAT (indexed by variable,
	// index 0 unused).
	Model []bool
	// Conflicts and Decisions report solver work.
	Conflicts int
	Decisions int
}

// Solve decides satisfiability of f with a CDCL search.
func Solve(f *CNF) (*Result, error) {
	s, unsat, err := newSolver(f)
	if err != nil {
		return nil, err
	}
	if unsat {
		return &Result{SAT: false}, nil
	}
	return s.solve()
}

const (
	unassigned int8 = iota
	assignedTrue
	assignedFalse
)

type watcher struct {
	clause  int // index into clauses
	blocker Lit
}

type solver struct {
	nVars   int
	clauses []Clause // original + learned
	nOrig   int

	assign   []int8 // by variable
	level    []int  // decision level of assignment, by variable
	reason   []int  // clause index that implied the assignment, −1 for decisions
	trail    []Lit
	trailLim []int // trail length at each decision level

	watches map[Lit][]watcher

	activity []float64
	varInc   float64
	polarity []bool // phase saving

	qhead     int
	conflicts int
	decisions int
}

func newSolver(f *CNF) (*solver, bool, error) {
	s := &solver{
		nVars:    f.NumVars,
		assign:   make([]int8, f.NumVars+1),
		level:    make([]int, f.NumVars+1),
		reason:   make([]int, f.NumVars+1),
		activity: make([]float64, f.NumVars+1),
		polarity: make([]bool, f.NumVars+1),
		watches:  make(map[Lit][]watcher),
		varInc:   1,
	}
	for i := range s.reason {
		s.reason[i] = -1
	}
	for _, c := range f.Clauses {
		cc := make(Clause, len(c))
		copy(cc, c)
		if err := s.addClause(cc); err != nil {
			if err == errUnsat {
				return nil, true, nil
			}
			return nil, false, err
		}
	}
	s.nOrig = len(s.clauses)
	return s, false, nil
}

// errUnsat is an internal sentinel: the instance is unsatisfiable at level 0.
var errUnsat = fmt.Errorf("sat: unsatisfiable at root")

func (s *solver) addClause(c Clause) error {
	switch len(c) {
	case 0:
		return errUnsat
	case 1:
		if !s.enqueue(c[0], -1) {
			return errUnsat
		}
		return nil
	}
	idx := len(s.clauses)
	s.clauses = append(s.clauses, c)
	s.watch(c[0], idx, c[1])
	s.watch(c[1], idx, c[0])
	return nil
}

func (s *solver) watch(l Lit, clause int, blocker Lit) {
	s.watches[l.Neg()] = append(s.watches[l.Neg()], watcher{clause: clause, blocker: blocker})
}

func (s *solver) value(l Lit) int8 {
	a := s.assign[l.Var()]
	if a == unassigned {
		return unassigned
	}
	if (a == assignedTrue) == l.Sign() {
		return assignedTrue
	}
	return assignedFalse
}

func (s *solver) enqueue(l Lit, reason int) bool {
	switch s.value(l) {
	case assignedTrue:
		return true
	case assignedFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = assignedTrue
	} else {
		s.assign[v] = assignedFalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = reason
	s.trail = append(s.trail, l)
	return true
}

func (s *solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns the index of a conflicting
// clause, or −1.
func (s *solver) propagate() int {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[l]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == assignedTrue {
				kept = append(kept, w)
				continue
			}
			c := s.clauses[w.clause]
			// Normalize: the false literal (¬l) at position 1.
			if c[0] == l.Neg() {
				c[0], c[1] = c[1], c[0]
			}
			if s.value(c[0]) == assignedTrue {
				kept = append(kept, watcher{clause: w.clause, blocker: c[0]})
				continue
			}
			// Find a new literal to watch.
			moved := false
			for i := 2; i < len(c); i++ {
				if s.value(c[i]) != assignedFalse {
					c[1], c[i] = c[i], c[1]
					s.watch(c[1], w.clause, c[0])
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{clause: w.clause, blocker: c[0]})
			if !s.enqueue(c[0], w.clause) {
				// Conflict: keep the remaining watchers and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[l] = kept
				return w.clause
			}
		}
		s.watches[l] = kept
	}
	return -1
}

// analyze performs first-UIP conflict analysis; it returns the learned
// clause (with the asserting literal first) and the backjump level.
func (s *solver) analyze(confl int) (Clause, int) {
	learned := Clause{0} // slot 0 for the asserting literal
	seen := make([]bool, s.nVars+1)
	counter := 0
	var p Lit
	idx := len(s.trail) - 1

	reasonLits := func(clause int, skip Lit) []Lit {
		c := s.clauses[clause]
		out := make([]Lit, 0, len(c))
		for _, q := range c {
			if q != skip {
				out = append(out, q)
			}
		}
		return out
	}

	lits := reasonLits(confl, 0)
	for {
		for _, q := range lits {
			v := q.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		lits = reasonLits(s.reason[p.Var()], p)
	}
	learned[0] = p.Neg()

	// Backjump level: the highest level among the other literals.
	back := 0
	for i := 1; i < len(learned); i++ {
		if lv := s.level[learned[i].Var()]; lv > back {
			back = lv
			learned[1], learned[i] = learned[i], learned[1]
		}
	}
	return learned, back
}

func (s *solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assign[v] == assignedTrue
		s.assign[v] = unassigned
		s.reason[v] = -1
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = bound
}

func (s *solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == unassigned && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby yields the Luby restart sequence 1,1,2,1,1,2,4,…
func luby(i int) int {
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i >= 1<<(k-1) && i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

func (s *solver) solve() (*Result, error) {
	// Root-level propagation of unit clauses.
	if s.propagate() >= 0 {
		return &Result{SAT: false, Conflicts: s.conflicts, Decisions: s.decisions}, nil
	}
	restart := 1
	limit := 64 * luby(restart)
	sinceRestart := 0
	for {
		confl := s.propagate()
		if confl >= 0 {
			s.conflicts++
			sinceRestart++
			if s.decisionLevel() == 0 {
				return &Result{SAT: false, Conflicts: s.conflicts, Decisions: s.decisions}, nil
			}
			learned, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], -1) {
					return &Result{SAT: false, Conflicts: s.conflicts, Decisions: s.decisions}, nil
				}
			} else {
				idx := len(s.clauses)
				s.clauses = append(s.clauses, learned)
				s.watch(learned[0], idx, learned[1])
				s.watch(learned[1], idx, learned[0])
				s.enqueue(learned[0], idx)
			}
			s.varInc /= 0.95
			continue
		}
		if sinceRestart >= limit {
			sinceRestart = 0
			restart++
			limit = 64 * luby(restart)
			s.cancelUntil(0)
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			// All variables assigned: SAT.
			model := make([]bool, s.nVars+1)
			for i := 1; i <= s.nVars; i++ {
				model[i] = s.assign[i] == assignedTrue
			}
			return &Result{SAT: true, Model: model, Conflicts: s.conflicts, Decisions: s.decisions}, nil
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		lit := Lit(v)
		if !s.polarity[v] {
			lit = lit.Neg()
		}
		s.enqueue(lit, -1)
	}
}
