// Package sat is a self-contained propositional satisfiability engine:
// CNF formulas, a CDCL solver (watched literals, first-UIP clause learning,
// VSIDS-style activities, Luby restarts), and a Tseitin transformation from
// Boolean circuits.
//
// In this repository it plays two roles from Vardi (PODS 1995):
//
//   - The ESOᵏ evaluator (§3.3 / Lemma 3.6) grounds the reduced formula over
//     the database domain and solves the resulting circuit — the "guess the
//     polynomial-size quantified relations" NP algorithm made executable.
//   - Theorem 4.5's expression-complexity lower bound reduces propositional
//     satisfiability to ESOᵏ over any fixed database; the direct solver here
//     is the baseline the reduction is validated against.
package sat

import (
	"fmt"
	"sort"
	"strings"
)

// Lit is a literal: +v for variable v, −v for its negation. Variables are
// numbered from 1. 0 is not a valid literal.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Lit

func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = fmt.Sprintf("%d", int(l))
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// CNF is a conjunction of clauses over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// NewCNF returns an empty formula over n variables.
func NewCNF(n int) *CNF {
	return &CNF{NumVars: n}
}

// AddVar allocates a fresh variable and returns it.
func (f *CNF) AddVar() int {
	f.NumVars++
	return f.NumVars
}

// Add appends a clause. Tautological clauses (containing l and ¬l) are
// dropped; duplicate literals are removed. It returns an error if a literal
// mentions an unallocated variable.
func (f *CNF) Add(lits ...Lit) error {
	seen := make(map[Lit]bool, len(lits))
	out := make(Clause, 0, len(lits))
	for _, l := range lits {
		if l == 0 {
			return fmt.Errorf("sat: zero literal")
		}
		if l.Var() > f.NumVars {
			return fmt.Errorf("sat: literal %d beyond %d variables", l, f.NumVars)
		}
		if seen[l.Neg()] {
			return nil // tautology
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	f.Clauses = append(f.Clauses, out)
	return nil
}

// MustAdd is Add that panics on error, for statically valid clauses.
func (f *CNF) MustAdd(lits ...Lit) {
	if err := f.Add(lits...); err != nil {
		panic(err)
	}
}

// Eval reports whether the assignment (indexed by variable, index 0 unused)
// satisfies the formula.
func (f *CNF) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if l.Var() < len(assign) && assign[l.Var()] == l.Sign() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// String renders the formula in a DIMACS-like layout.
func (f *CNF) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		lits := make([]string, len(c))
		for i, l := range c {
			lits[i] = fmt.Sprintf("%d", int(l))
		}
		sort.Strings(lits)
		b.WriteString(strings.Join(lits, " "))
		b.WriteString(" 0\n")
	}
	return b.String()
}
