package sat

import (
	"math/rand"
	"testing"
)

// bruteForce decides satisfiability by enumeration (n ≤ 20).
func bruteForce(f *CNF) bool {
	n := f.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestSolveTrivial(t *testing.T) {
	f := NewCNF(1)
	f.MustAdd(1)
	r, err := Solve(f)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SAT || !r.Model[1] {
		t.Fatalf("x1 alone: %+v", r)
	}

	g := NewCNF(1)
	g.MustAdd(1)
	g.MustAdd(-1)
	r, err = Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.SAT {
		t.Fatal("x1 ∧ ¬x1 reported SAT")
	}
}

func TestEmptyFormulaIsSAT(t *testing.T) {
	r, err := Solve(NewCNF(3))
	if err != nil {
		t.Fatal(err)
	}
	if !r.SAT {
		t.Fatal("empty formula should be SAT")
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	f := NewCNF(2)
	f.MustAdd(1, 2)
	f.Clauses = append(f.Clauses, Clause{}) // inject an empty clause
	r, err := Solve(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.SAT {
		t.Fatal("formula with empty clause reported SAT")
	}
}

func TestTautologyDropped(t *testing.T) {
	f := NewCNF(2)
	f.MustAdd(1, -1, 2)
	if len(f.Clauses) != 0 {
		t.Fatalf("tautology kept: %v", f.Clauses)
	}
}

func TestAddValidation(t *testing.T) {
	f := NewCNF(2)
	if err := f.Add(0); err == nil {
		t.Fatal("zero literal accepted")
	}
	if err := f.Add(3); err == nil {
		t.Fatal("out-of-range literal accepted")
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// x1, x1→x2, x2→x3, …: forces all true.
	n := 50
	f := NewCNF(n)
	f.MustAdd(1)
	for i := 1; i < n; i++ {
		f.MustAdd(Lit(-i), Lit(i+1))
	}
	r, err := Solve(f)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SAT {
		t.Fatal("implication chain UNSAT")
	}
	for v := 1; v <= n; v++ {
		if !r.Model[v] {
			t.Fatalf("x%d false in model", v)
		}
	}
}

// pigeonhole builds PHP(p, h): p pigeons into h holes, each pigeon somewhere,
// no two pigeons share a hole. UNSAT iff p > h.
func pigeonhole(p, h int) *CNF {
	f := NewCNF(p * h)
	v := func(pi, hi int) Lit { return Lit(pi*h + hi + 1) }
	for pi := 0; pi < p; pi++ {
		row := make([]Lit, h)
		for hi := 0; hi < h; hi++ {
			row[hi] = v(pi, hi)
		}
		f.MustAdd(row...)
	}
	for hi := 0; hi < h; hi++ {
		for a := 0; a < p; a++ {
			for b := a + 1; b < p; b++ {
				f.MustAdd(v(a, hi).Neg(), v(b, hi).Neg())
			}
		}
	}
	return f
}

func TestPigeonhole(t *testing.T) {
	r, err := Solve(pigeonhole(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !r.SAT {
		t.Fatal("PHP(4,4) should be SAT")
	}
	r, err = Solve(pigeonhole(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r.SAT {
		t.Fatal("PHP(5,4) should be UNSAT")
	}
	if r.Conflicts == 0 {
		t.Fatal("PHP(5,4) solved without conflicts (suspicious)")
	}
}

func TestModelSatisfiesFormula(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(10)
		f := NewCNF(n)
		clauses := 2 + r.Intn(4*n)
		for i := 0; i < clauses; i++ {
			width := 1 + r.Intn(3)
			lits := make([]Lit, width)
			for j := range lits {
				l := Lit(1 + r.Intn(n))
				if r.Intn(2) == 0 {
					l = l.Neg()
				}
				lits[j] = l
			}
			f.MustAdd(lits...)
		}
		res, err := Solve(f)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(f)
		if res.SAT != want {
			t.Fatalf("Solve=%v bruteForce=%v on\n%s", res.SAT, want, f)
		}
		if res.SAT && !f.Eval(res.Model) {
			t.Fatalf("model does not satisfy formula:\n%s", f)
		}
	}
}

func TestLubySequence(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestCircuitEvalAndTseitin(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		c := NewCircuit()
		inputs := make([]Gate, 3+r.Intn(3))
		for i := range inputs {
			inputs[i] = c.Input()
		}
		var build func(d int) Gate
		build = func(d int) Gate {
			if d == 0 || r.Intn(4) == 0 {
				switch r.Intn(3) {
				case 0:
					return inputs[r.Intn(len(inputs))]
				case 1:
					return c.Const(r.Intn(2) == 0)
				default:
					return c.Not(inputs[r.Intn(len(inputs))])
				}
			}
			switch r.Intn(4) {
			case 0:
				return c.And(build(d-1), build(d-1))
			case 1:
				return c.Or(build(d-1), build(d-1), build(d-1))
			case 2:
				return c.Not(build(d - 1))
			default:
				return c.Iff(build(d-1), build(d-1))
			}
		}
		root := build(3)
		cnf, err := c.ToCNF(root)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(cnf)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force the circuit.
		n := c.Inputs()
		circuitSAT := false
		assign := make([]bool, n+1)
		for mask := 0; mask < 1<<n; mask++ {
			for v := 1; v <= n; v++ {
				assign[v] = mask&(1<<(v-1)) != 0
			}
			v, err := c.Eval(root, assign)
			if err != nil {
				t.Fatal(err)
			}
			if v {
				circuitSAT = true
				break
			}
		}
		if res.SAT != circuitSAT {
			t.Fatalf("Tseitin SAT=%v, circuit SAT=%v", res.SAT, circuitSAT)
		}
		if res.SAT {
			// The model's input part must satisfy the circuit.
			v, err := c.Eval(root, res.Model[:n+1])
			if err != nil {
				t.Fatal(err)
			}
			if !v {
				t.Fatal("Tseitin model does not satisfy circuit inputs")
			}
		}
	}
}

func TestCircuitHelpers(t *testing.T) {
	c := NewCircuit()
	a, b := c.Input(), c.Input()
	if got := c.And(); got < 0 {
		t.Fatal("empty And")
	}
	one := c.And(a)
	if one != a {
		t.Fatal("unary And should collapse")
	}
	imp := c.Implies(a, b)
	for mask := 0; mask < 4; mask++ {
		in := []bool{false, mask&1 != 0, mask&2 != 0}
		v, err := c.Eval(imp, in)
		if err != nil {
			t.Fatal(err)
		}
		if v != (!in[1] || in[2]) {
			t.Fatalf("Implies wrong at %v", in)
		}
	}
}

func TestToCNFRootOutOfRange(t *testing.T) {
	c := NewCircuit()
	c.Input()
	if _, err := c.ToCNF(Gate(99)); err == nil {
		t.Fatal("bad root accepted")
	}
}
