package sat

import (
	"fmt"
)

// Circuit is a Boolean circuit (DAG of AND/OR/NOT gates over input
// variables), converted to CNF by the Tseitin transformation. Grounded
// bounded-variable formulas become circuits: quantifiers expand into
// bounded fan-in gates over atom inputs.
type Circuit struct {
	nodes  []node
	inputs int
}

// Gate identifies a circuit node.
type Gate int

type nodeKind int

const (
	kindInput nodeKind = iota
	kindConst
	kindAnd
	kindOr
	kindNot
)

type node struct {
	kind nodeKind
	val  bool   // for kindConst
	in   int    // for kindInput: variable number
	args []Gate // for gates
}

// NewCircuit returns an empty circuit.
func NewCircuit() *Circuit { return &Circuit{} }

// Input allocates a fresh input variable and returns its gate. Input gates
// map to CNF variables 1, 2, … in allocation order.
func (c *Circuit) Input() Gate {
	c.inputs++
	c.nodes = append(c.nodes, node{kind: kindInput, in: c.inputs})
	return Gate(len(c.nodes) - 1)
}

// Inputs returns the number of input variables allocated so far.
func (c *Circuit) Inputs() int { return c.inputs }

// Const returns a constant gate.
func (c *Circuit) Const(v bool) Gate {
	c.nodes = append(c.nodes, node{kind: kindConst, val: v})
	return Gate(len(c.nodes) - 1)
}

// And returns the conjunction of the arguments (true if empty).
func (c *Circuit) And(gs ...Gate) Gate {
	if len(gs) == 0 {
		return c.Const(true)
	}
	if len(gs) == 1 {
		return gs[0]
	}
	c.nodes = append(c.nodes, node{kind: kindAnd, args: append([]Gate(nil), gs...)})
	return Gate(len(c.nodes) - 1)
}

// Or returns the disjunction of the arguments (false if empty).
func (c *Circuit) Or(gs ...Gate) Gate {
	if len(gs) == 0 {
		return c.Const(false)
	}
	if len(gs) == 1 {
		return gs[0]
	}
	c.nodes = append(c.nodes, node{kind: kindOr, args: append([]Gate(nil), gs...)})
	return Gate(len(c.nodes) - 1)
}

// Not returns the negation of g.
func (c *Circuit) Not(g Gate) Gate {
	c.nodes = append(c.nodes, node{kind: kindNot, args: []Gate{g}})
	return Gate(len(c.nodes) - 1)
}

// Implies returns ¬a ∨ b.
func (c *Circuit) Implies(a, b Gate) Gate { return c.Or(c.Not(a), b) }

// Iff returns (a ∧ b) ∨ (¬a ∧ ¬b).
func (c *Circuit) Iff(a, b Gate) Gate {
	return c.Or(c.And(a, b), c.And(c.Not(a), c.Not(b)))
}

// Size returns the number of circuit nodes.
func (c *Circuit) Size() int { return len(c.nodes) }

// Eval evaluates gate g under the input assignment (indexed by CNF variable;
// index 0 unused).
func (c *Circuit) Eval(g Gate, inputs []bool) (bool, error) {
	memo := make(map[Gate]bool)
	var rec func(Gate) (bool, error)
	rec = func(g Gate) (bool, error) {
		if v, ok := memo[g]; ok {
			return v, nil
		}
		if g < 0 || int(g) >= len(c.nodes) {
			return false, fmt.Errorf("sat: gate %d out of range", g)
		}
		n := c.nodes[g]
		var v bool
		switch n.kind {
		case kindInput:
			if n.in >= len(inputs) {
				return false, fmt.Errorf("sat: input %d missing from assignment", n.in)
			}
			v = inputs[n.in]
		case kindConst:
			v = n.val
		case kindAnd:
			v = true
			for _, a := range n.args {
				av, err := rec(a)
				if err != nil {
					return false, err
				}
				v = v && av
			}
		case kindOr:
			v = false
			for _, a := range n.args {
				av, err := rec(a)
				if err != nil {
					return false, err
				}
				v = v || av
			}
		case kindNot:
			av, err := rec(n.args[0])
			if err != nil {
				return false, err
			}
			v = !av
		}
		memo[g] = v
		return v, nil
	}
	return rec(g)
}

// ToCNF converts the circuit to CNF by the Tseitin transformation and
// asserts the root gate. Input gates keep variables 1..Inputs(); internal
// gates get fresh definition variables, so the result is equisatisfiable
// with the circuit and every model restricts to a satisfying input
// assignment.
func (c *Circuit) ToCNF(root Gate) (*CNF, error) {
	if root < 0 || int(root) >= len(c.nodes) {
		return nil, fmt.Errorf("sat: root gate %d out of range", root)
	}
	f := NewCNF(c.inputs)
	lit := make([]Lit, len(c.nodes))
	var rec func(Gate) (Lit, error)
	rec = func(g Gate) (Lit, error) {
		if lit[g] != 0 {
			return lit[g], nil
		}
		n := c.nodes[g]
		var l Lit
		switch n.kind {
		case kindInput:
			l = Lit(n.in)
		case kindConst:
			v := f.AddVar()
			l = Lit(v)
			if n.val {
				f.MustAdd(l)
			} else {
				f.MustAdd(l.Neg())
			}
		case kindNot:
			a, err := rec(n.args[0])
			if err != nil {
				return 0, err
			}
			l = a.Neg()
		case kindAnd, kindOr:
			args := make([]Lit, len(n.args))
			for i, ag := range n.args {
				a, err := rec(ag)
				if err != nil {
					return 0, err
				}
				args[i] = a
			}
			v := f.AddVar()
			l = Lit(v)
			if n.kind == kindAnd {
				// l ↔ ⋀ args
				long := make([]Lit, 0, len(args)+1)
				long = append(long, l)
				for _, a := range args {
					f.MustAdd(l.Neg(), a)
					long = append(long, a.Neg())
				}
				f.MustAdd(long...)
			} else {
				// l ↔ ⋁ args
				long := make([]Lit, 0, len(args)+1)
				long = append(long, l.Neg())
				for _, a := range args {
					f.MustAdd(l, a.Neg())
					long = append(long, a)
				}
				f.MustAdd(long...)
			}
		}
		lit[g] = l
		return l, nil
	}
	rl, err := rec(root)
	if err != nil {
		return nil, err
	}
	f.MustAdd(rl)
	return f, nil
}
