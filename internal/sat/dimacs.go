package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF in the standard DIMACS format:
//
//	c a comment
//	p cnf <vars> <clauses>
//	1 -2 3 0
//	…
//
// Clauses may span lines; each ends with 0. The declared clause count is
// checked against the clauses read.
func ParseDIMACS(r io.Reader) (*CNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var f *CNF
	declared := -1
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if f != nil {
				return nil, fmt.Errorf("sat: duplicate problem line")
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, fmt.Errorf("sat: bad variable count %q", fields[2])
			}
			nc, err := strconv.Atoi(fields[3])
			if err != nil || nc < 0 {
				return nil, fmt.Errorf("sat: bad clause count %q", fields[3])
			}
			f = NewCNF(nv)
			declared = nc
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("sat: clause before problem line: %q", line)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", tok)
			}
			if v == 0 {
				if err := f.Add(cur...); err != nil {
					return nil, err
				}
				cur = cur[:0]
				continue
			}
			cur = append(cur, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("sat: missing problem line")
	}
	if len(cur) > 0 {
		return nil, fmt.Errorf("sat: unterminated clause")
	}
	// Tautologies are dropped by Add, so allow fewer clauses than declared,
	// but never more.
	if len(f.Clauses) > declared {
		return nil, fmt.Errorf("sat: %d clauses read, %d declared", len(f.Clauses), declared)
	}
	return f, nil
}

// WriteDIMACS renders the formula in DIMACS format.
func (f *CNF) WriteDIMACS(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(w, "%d ", int(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "0"); err != nil {
			return err
		}
	}
	return nil
}
