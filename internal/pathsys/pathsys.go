// Package pathsys implements Cook's Path Systems problem (Cook 1974), the
// canonical PTIME-complete problem, and the Proposition 3.2 reduction from
// it to FO³ combined complexity:
//
//	the three-variable formula family φ_m(x), built by substituting the
//	previous member for the atom P(x), defines the reachable elements
//	after m derivation rounds, so the Path Systems query "does T contain
//	a reachable element?" is the FO³ query ∃x (T(x) ∧ φ_m(x)).
//
// The package provides the instance type, a linear-time worklist solver
// (the baseline), seeded generators, the database view, and the reduction.
package pathsys

import (
	"fmt"
	"math/rand"

	"repro/internal/database"
	"repro/internal/logic"
)

// Instance is a path system: a domain {0..N−1}, source set S, target set T,
// and derivation rules Q — Q(x, y, z) derives x from y and z.
type Instance struct {
	N int
	S []int
	T []int
	Q [][3]int
}

// Validate checks that every element mentioned is within the domain.
func (in *Instance) Validate() error {
	if in.N <= 0 {
		return fmt.Errorf("pathsys: empty domain")
	}
	chk := func(v int) error {
		if v < 0 || v >= in.N {
			return fmt.Errorf("pathsys: element %d outside [0,%d)", v, in.N)
		}
		return nil
	}
	for _, v := range in.S {
		if err := chk(v); err != nil {
			return err
		}
	}
	for _, v := range in.T {
		if err := chk(v); err != nil {
			return err
		}
	}
	for _, q := range in.Q {
		for _, v := range q {
			if err := chk(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reachable computes the set of reachable elements with a worklist: the
// least P with S ⊆ P and Q(x,y,z) ∧ P(y) ∧ P(z) → P(x). This is the
// Datalog program of Proposition 3.2 run directly, in time linear in the
// instance.
func (in *Instance) Reachable() []bool {
	reach := make([]bool, in.N)
	// Index rules by premises.
	byPremise := make([][]int, in.N) // element → rule indices using it as y or z
	for i, q := range in.Q {
		byPremise[q[1]] = append(byPremise[q[1]], i)
		if q[2] != q[1] {
			byPremise[q[2]] = append(byPremise[q[2]], i)
		}
	}
	var work []int
	push := func(v int) {
		if !reach[v] {
			reach[v] = true
			work = append(work, v)
		}
	}
	for _, v := range in.S {
		push(v)
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, ri := range byPremise[v] {
			q := in.Q[ri]
			if reach[q[1]] && reach[q[2]] {
				push(q[0])
			}
		}
	}
	return reach
}

// Solve answers the Path Systems query: does T contain a reachable element?
func (in *Instance) Solve() bool {
	reach := in.Reachable()
	for _, v := range in.T {
		if reach[v] {
			return true
		}
	}
	return false
}

// ToDatabase renders the instance as the Proposition 3.2 database: a ternary
// Q and unary S and T.
func (in *Instance) ToDatabase() (*database.Database, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	b := database.NewBuilder().Relation("Q", 3).Relation("S", 1).Relation("T", 1)
	for v := 0; v < in.N; v++ {
		b.Domain(v)
	}
	for _, q := range in.Q {
		b.Add("Q", q[0], q[1], q[2])
	}
	for _, v := range in.S {
		b.Add("S", v)
	}
	for _, v := range in.T {
		b.Add("T", v)
	}
	return b.Build()
}

// Step is the Proposition 3.2 formula φ(x):
//
//	S(x) ∨ ∃y∃z (Q(x,y,z) ∧ ∀x ((x=y ∨ x=z) → P(x)))
//
// — "x is a source, or derivable from two P-elements". The inner ∀x reuses
// the variable x, which is the whole point: three variables suffice.
func Step() logic.Formula {
	return logic.Or(
		logic.R("S", "x"),
		logic.Exists(
			logic.And(
				logic.R("Q", "x", "y", "z"),
				logic.Forall(
					logic.Implies(
						logic.Or(logic.Equal("x", "y"), logic.Equal("x", "z")),
						logic.R("P", "x")),
					"x")),
			"y", "z"))
}

// Phi builds φ_m(x): φ with P(x) substituted by φ_{m−1}(x), starting from
// φ₁ = φ[P(x) := false]. Its width stays 3 and its size grows linearly in m.
func Phi(m int) (logic.Formula, error) {
	if m < 1 {
		return nil, fmt.Errorf("pathsys: φ_%d undefined", m)
	}
	step := Step()
	cur, err := logic.SubstAtom(step, "P", []logic.Var{"x"}, logic.False)
	if err != nil {
		return nil, err
	}
	for i := 2; i <= m; i++ {
		cur, err = logic.SubstAtom(step, "P", []logic.Var{"x"}, cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// Query builds the Proposition 3.2 Boolean query σ_m = ∃x (T(x) ∧ φ_m(x)).
// For m ≥ the domain size, σ_m holds in the instance's database exactly
// when the Path Systems query is positive.
func Query(m int) (logic.Query, error) {
	phi, err := Phi(m)
	if err != nil {
		return logic.Query{}, err
	}
	body := logic.Exists(logic.And(logic.R("T", "x"), phi), "x")
	return logic.NewQuery(nil, body)
}

// Random generates a random instance with the given domain size, rule count
// and source/target densities, deterministically per seed.
func Random(r *rand.Rand, n, rules int) *Instance {
	in := &Instance{N: n}
	for i := 0; i < rules; i++ {
		in.Q = append(in.Q, [3]int{r.Intn(n), r.Intn(n), r.Intn(n)})
	}
	ns := 1 + r.Intn(maxInt(1, n/3))
	for i := 0; i < ns; i++ {
		in.S = append(in.S, r.Intn(n))
	}
	nt := 1 + r.Intn(maxInt(1, n/3))
	for i := 0; i < nt; i++ {
		in.T = append(in.T, r.Intn(n))
	}
	return in
}

// Chain generates the worst-case deep derivation: element i+1 derivable
// from (i, i), source {0}, target {n−1}. Solvable, and needs n rounds.
func Chain(n int) *Instance {
	in := &Instance{N: n, S: []int{0}, T: []int{n - 1}}
	for i := 0; i+1 < n; i++ {
		in.Q = append(in.Q, [3]int{i + 1, i, i})
	}
	return in
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
