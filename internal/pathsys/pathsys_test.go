package pathsys

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/logic"
)

func TestReachableChain(t *testing.T) {
	in := Chain(6)
	reach := in.Reachable()
	for v := 0; v < 6; v++ {
		if !reach[v] {
			t.Fatalf("chain element %d not reachable", v)
		}
	}
	if !in.Solve() {
		t.Fatal("chain instance should be solvable")
	}
}

func TestReachableNeedsBothPremises(t *testing.T) {
	// 2 derivable from (0, 1), but 1 is not a source: unreachable.
	in := &Instance{N: 3, S: []int{0}, T: []int{2}, Q: [][3]int{{2, 0, 1}}}
	if in.Solve() {
		t.Fatal("derivation with missing premise succeeded")
	}
	in.S = append(in.S, 1)
	if !in.Solve() {
		t.Fatal("derivation with both premises failed")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Instance{
		{N: 0},
		{N: 2, S: []int{2}},
		{N: 2, T: []int{-1}},
		{N: 2, Q: [][3]int{{0, 1, 2}}},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("invalid instance accepted: %+v", in)
		}
	}
}

func TestPhiWidthAndSize(t *testing.T) {
	for m := 1; m <= 8; m++ {
		phi, err := Phi(m)
		if err != nil {
			t.Fatal(err)
		}
		if w := logic.Width(phi); w != 3 {
			t.Fatalf("Width(φ_%d) = %d, want 3", m, w)
		}
	}
	s2, _ := Phi(2)
	s4, _ := Phi(4)
	s6, _ := Phi(6)
	if logic.Size(s4)-logic.Size(s2) != logic.Size(s6)-logic.Size(s4) {
		t.Fatalf("φ size growth not linear: %d, %d, %d", logic.Size(s2), logic.Size(s4), logic.Size(s6))
	}
	if _, err := Phi(0); err == nil {
		t.Fatal("φ₀ accepted")
	}
}

func TestPhiMatchesRounds(t *testing.T) {
	// φ_m(x) holds exactly of the elements derivable within m rounds.
	in := Chain(5)
	db, err := in.ToDatabase()
	if err != nil {
		t.Fatal(err)
	}
	for m := 1; m <= 6; m++ {
		phi, err := Phi(m)
		if err != nil {
			t.Fatal(err)
		}
		q := logic.MustQuery([]logic.Var{"x"}, phi)
		got, err := eval.BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		// On the chain, round i adds element i−1 (0 is a source, round 1).
		want := m
		if want > 5 {
			want = 5
		}
		if got.Len() != want {
			t.Fatalf("φ_%d defines %d elements, want %d: %v", m, got.Len(), want, got)
		}
	}
}

func TestReductionAgreesWithSolver(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(5)
		in := Random(r, n, r.Intn(3*n))
		want := in.Solve()
		db, err := in.ToDatabase()
		if err != nil {
			t.Fatal(err)
		}
		q, err := Query(n)
		if err != nil {
			t.Fatal(err)
		}
		if q.Width() != 3 {
			t.Fatalf("query width %d, want 3", q.Width())
		}
		ans, err := eval.BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got := ans.Len() > 0
		if got != want {
			t.Fatalf("reduction disagrees with solver: got %v, want %v on %+v", got, want, in)
		}
	}
}

func TestReductionAgreesUnderNaive(t *testing.T) {
	// Small instances through the trusted evaluator too.
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(2)
		in := Random(r, n, r.Intn(2*n))
		db, err := in.ToDatabase()
		if err != nil {
			t.Fatal(err)
		}
		q, err := Query(n)
		if err != nil {
			t.Fatal(err)
		}
		holds, err := eval.NaiveHolds(q.Body, db)
		if err != nil {
			t.Fatal(err)
		}
		if holds != in.Solve() {
			t.Fatalf("naive disagreement on %+v", in)
		}
	}
}
