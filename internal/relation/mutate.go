package relation

// Tuple-level delta application, the relation substrate of mutable
// databases: a database update is normalized into per-relation insert and
// delete tuple lists (database.Delta), and each representation applies them
// without rebuilding from scratch. Deletes apply before inserts, so a tuple
// appearing in both lists ends up present — the update semantics documented
// on database.Database.Apply.

// ApplyDelta returns a new set equal to (s \ del) ∪ ins. The receiver is not
// modified — database snapshots share unchanged relations, so mutation must
// be copy-on-write — and the returned set shares tuple storage with s and
// ins (tuples are treated as immutable everywhere in this package).
func (s *Set) ApplyDelta(ins, del []Tuple) *Set {
	out := s.Clone()
	for _, t := range del {
		out.Remove(t)
	}
	for _, t := range ins {
		out.Add(t)
	}
	return out
}

// ApplyTuples applies a delta to a dense relation in place: del tuples are
// cleared, then ins tuples set. Tuples are in the relation's own coordinate
// space (domain indices); out-of-range components panic via Space.Encode,
// matching Add/Remove.
func (d *Dense) ApplyTuples(ins, del []Tuple) {
	for _, t := range del {
		d.Remove(t)
	}
	for _, t := range ins {
		d.Add(t)
	}
}

// ApplyDelta returns a new sparse relation equal to (s \ del) ∪ ins, built
// by two sorted-code merges. The receiver is unchanged; errors report tuples
// outside the relation's k/n shape.
func (s *Sparse) ApplyDelta(ins, del []Tuple) (*Sparse, error) {
	delRel, err := SparseOf(s.k, s.n, del...)
	if err != nil {
		return nil, err
	}
	insRel, err := SparseOf(s.k, s.n, ins...)
	if err != nil {
		return nil, err
	}
	return s.Difference(delRel).Union(insRel), nil
}
