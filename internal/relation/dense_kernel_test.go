package relation

import (
	"math/rand"
	"testing"
)

// randomDenseDensity fills a fresh relation with the given bit density.
func randomDenseDensity(r *rand.Rand, sp *Space, density float64) *Dense {
	d := sp.Empty()
	for idx := 0; idx < sp.Size(); idx++ {
		if r.Float64() < density {
			d.bits.Set(idx)
		}
	}
	return d
}

// TestAxisKernelsMatchRef cross-validates the word-parallel quantifier
// kernels against the bit-level reference oracles over every arity 1–4,
// domain 1–9 and axis, at several densities. Small domains exercise the
// masked-word path (stride < 64); the sizes deliberately include
// non-multiples of 64.
func TestAxisKernelsMatchRef(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for k := 1; k <= 4; k++ {
		for n := 1; n <= 9; n++ {
			sp := MustSpace(k, n)
			for _, density := range []float64{0.05, 0.5, 0.95} {
				d := randomDenseDensity(r, sp, density)
				for axis := 0; axis < k; axis++ {
					ex, exRef := d.ExistsAxis(axis), d.ExistsAxisRef(axis)
					if !ex.Equal(exRef) {
						t.Fatalf("k=%d n=%d axis=%d density=%g: ExistsAxis disagrees with reference\nkernel: %v\nref:    %v",
							k, n, axis, density, ex, exRef)
					}
					fa, faRef := d.ForallAxis(axis), d.ForallAxisRef(axis)
					if !fa.Equal(faRef) {
						t.Fatalf("k=%d n=%d axis=%d density=%g: ForallAxis disagrees with reference\nkernel: %v\nref:    %v",
							k, n, axis, density, fa, faRef)
					}
					ex.Release()
					exRef.Release()
					fa.Release()
					faRef.Release()
				}
				d.Release()
			}
		}
	}
}

// TestAxisKernelsWideDomains covers the block path (stride ≥ 64): an exactly
// word-aligned slab (n=64), an unaligned one (n=70), and a three-axis shape
// where the outer axes fold whole word ranges while the innermost takes the
// masked path.
func TestAxisKernelsWideDomains(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shapes := []struct{ k, n int }{
		{2, 64}, {2, 70}, {2, 100}, {3, 17}, {1, 200},
	}
	for _, sh := range shapes {
		sp := MustSpace(sh.k, sh.n)
		d := randomDenseDensity(r, sp, 0.3)
		for axis := 0; axis < sh.k; axis++ {
			ex, exRef := d.ExistsAxis(axis), d.ExistsAxisRef(axis)
			if !ex.Equal(exRef) {
				t.Fatalf("%d^%d axis=%d: ExistsAxis disagrees with reference", sh.n, sh.k, axis)
			}
			fa, faRef := d.ForallAxis(axis), d.ForallAxisRef(axis)
			if !fa.Equal(faRef) {
				t.Fatalf("%d^%d axis=%d: ForallAxis disagrees with reference", sh.n, sh.k, axis)
			}
			ex.Release()
			exRef.Release()
			fa.Release()
			faRef.Release()
		}
		d.Release()
	}
}

// TestProjectAtMatchesEnumeration checks ProjectAt — the dense fixpoint-stage
// extractor — against a direct enumeration of the definition: t is in the
// result iff some source point with cols←t, pinned←pinnedVals is in d.
func TestProjectAtMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := []struct {
		k, n       int
		cols       []int
		pinned     []int
		pinnedVals []int
	}{
		{3, 4, []int{0, 1, 2}, nil, nil},                // permutation identity
		{3, 4, []int{2, 0}, nil, nil},                   // drop + reorder
		{3, 4, []int{1}, []int{0}, []int{2}},            // pin one axis
		{4, 3, []int{3, 1}, []int{0, 2}, []int{1, 0}},   // pin two axes
		{2, 70, []int{1}, nil, nil},                     // wide domain, stride-1 gather
		{2, 70, []int{0}, nil, nil},                     // wide domain, strided gather
		{3, 5, []int{}, []int{0, 1, 2}, []int{1, 2, 3}}, // fully pinned, 0-ary result
	}
	for _, tc := range cases {
		sp := MustSpace(tc.k, tc.n)
		esp := MustSpace(len(tc.cols), tc.n)
		d := randomDenseDensity(r, sp, 0.3)
		got := d.ProjectAt(esp, tc.cols, tc.pinned, tc.pinnedVals)

		want := esp.Empty()
		full := make(Tuple, tc.k)
		var rec func(i int)
		rec = func(i int) {
			if i == tc.k {
				if !d.Contains(full) {
					return
				}
				for j, p := range tc.pinned {
					if full[p] != tc.pinnedVals[j] {
						return
					}
				}
				row := make(Tuple, len(tc.cols))
				for j, c := range tc.cols {
					row[j] = full[c]
				}
				want.Add(row)
				return
			}
			for v := 0; v < tc.n; v++ {
				full[i] = v
				rec(i + 1)
			}
		}
		rec(0)

		if !got.Equal(want) {
			t.Fatalf("%d^%d cols=%v pinned=%v: ProjectAt = %v, want %v",
				tc.n, tc.k, tc.cols, tc.pinned, got, want)
		}
		got.Release()
		want.Release()
		d.Release()
	}
}

// TestFromDenseAtomMatchesFromAtom checks that cylindrifying a dense source
// agrees with round-tripping it through a sparse set, including repeated-axis
// patterns like R(x, x).
func TestFromDenseAtomMatchesFromAtom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cases := []struct {
		srcK, k, n int
		args       []int
	}{
		{1, 3, 4, []int{1}},
		{2, 3, 4, []int{2, 0}},
		{2, 3, 4, []int{1, 1}}, // repeated axis: only diagonal tuples contribute
		{2, 2, 9, []int{1, 0}},
		{3, 4, 3, []int{3, 0, 2}},
	}
	for _, tc := range cases {
		ssp := MustSpace(tc.srcK, tc.n)
		sp := MustSpace(tc.k, tc.n)
		src := randomDenseDensity(r, ssp, 0.4)

		got, err := sp.FromDenseAtom(src, tc.args)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sp.FromAtom(src.ToSet(), tc.args)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("src %d^%d args=%v: FromDenseAtom = %v, want %v",
				tc.n, tc.srcK, tc.args, got, want)
		}
		got.Release()
		want.Release()
		src.Release()
	}
}

// TestFusedConnectivesMatchTwoPass checks the single-pass ImpliesWith and
// IffWith against their definitional two-pass forms.
func TestFusedConnectivesMatchTwoPass(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, sh := range []struct{ k, n int }{{2, 5}, {3, 4}, {2, 70}} {
		sp := MustSpace(sh.k, sh.n)
		a := randomDenseDensity(r, sp, 0.5)
		b := randomDenseDensity(r, sp, 0.5)

		imp := a.Clone()
		imp.ImpliesWith(b)
		impRef := a.Clone()
		impRef.Complement()
		impRef.UnionWith(b)
		if !imp.Equal(impRef) {
			t.Fatalf("%d^%d: ImpliesWith disagrees with ¬a ∪ b", sh.n, sh.k)
		}

		iff := a.Clone()
		iff.IffWith(b)
		// a ↔ b = (a → b) ∩ (b → a)
		iffRef := a.Clone()
		iffRef.ImpliesWith(b)
		back := b.Clone()
		back.ImpliesWith(a)
		iffRef.IntersectWith(back)
		if !iff.Equal(iffRef) {
			t.Fatalf("%d^%d: IffWith disagrees with (a→b) ∩ (b→a)", sh.n, sh.k)
		}

		for _, d := range []*Dense{imp, impRef, iff, iffRef, back, a, b} {
			d.Release()
		}
	}
}

// TestReleaseRecyclesCleanly checks that a released bitmap reused from the
// pool never leaks stale contents into a fresh Empty/Full relation.
func TestReleaseRecyclesCleanly(t *testing.T) {
	sp := MustSpace(2, 6)
	d := sp.Full()
	d.Release()
	e := sp.Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() from recycled bitmap is not empty")
	}
	e.Release()
	f := sp.Full()
	if f.Count() != sp.Size() {
		t.Fatalf("Full() from recycled bitmap has %d of %d tuples", f.Count(), sp.Size())
	}
	f.Release()
}
