package relation

// Delta-aware primitives for semi-naive fixpoint evaluation. A fixpoint
// stage's delta is typically a thin slice of the nᵏ-point space, so these
// operations drive off the delta operand's nonzero words (see
// bitset/sparse.go) instead of sweeping the whole bitmap, and the quantifier
// variant picks the bit-level path when the delta is sparse enough that
// per-tuple work beats a word-parallel pass.

// UnionSparse sets d to d ∪ o, visiting only o's nonzero words. It returns
// the number of changed words — the changed-word mask size, which is what a
// delta pass's downstream cost is proportional to.
func (d *Dense) UnionSparse(o *Dense) int {
	d.mustMatch(o)
	return d.bits.OrSparse(o.bits)
}

// UnionAndSparse sets d to d ∪ (drv ∩ o), visiting only drv's nonzero words:
// the semi-naive join rule with drv as the delta side.
func (d *Dense) UnionAndSparse(drv, o *Dense) int {
	d.mustMatch(drv)
	d.mustMatch(o)
	return d.bits.OrAndSparse(drv.bits, o.bits)
}

// DifferenceSparse sets d to d \ o, visiting only d's nonzero words, and
// returns the number of tuples remaining in d — the delta-tightening step,
// reporting convergence (zero) from the same pass.
func (d *Dense) DifferenceSparse(o *Dense) int {
	d.mustMatch(o)
	return d.bits.AndNotSparse(o.bits)
}

// ExistsAxisSparse is ExistsAxis for delta relations: when d holds few
// tuples, cylindrifying each set bit individually is cheaper than the
// word-parallel axis fold, so the implementation switches on density. The
// result is identical to ExistsAxis at every density.
func (d *Dense) ExistsAxisSparse(i int) *Dense {
	d.sp.checkAxis(i)
	cnt := d.Count()
	// Bit-level cost is O(cnt·n) set bits; the word-parallel fold touches
	// O(size/64 · log n) words. Cross over when the former is clearly smaller.
	if cnt*d.sp.n*8 < d.sp.size {
		res := d.sp.Empty()
		if cnt == 0 {
			return res
		}
		stride := d.sp.stride[i]
		n := d.sp.n
		d.bits.ForEach(func(idx int) {
			base := idx - d.sp.Coord(idx, i)*stride
			for v := 0; v < n; v++ {
				res.bits.Set(base + v*stride)
			}
		})
		return res
	}
	return d.ExistsAxis(i)
}
