package relation

import (
	"math/rand"
	"testing"
)

func TestUnionSparseMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sp, err := NewSpace(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, density := range []float64{0, 0.01, 0.4} {
		a := randomDenseDensity(rng, sp, 0.3)
		b := randomDenseDensity(rng, sp, density)
		want := a.Clone()
		want.UnionWith(b)
		got := a.Clone()
		got.UnionSparse(b)
		if !got.Equal(want) {
			t.Fatalf("density %v: UnionSparse disagrees with UnionWith", density)
		}
	}
}

func TestUnionAndSparseMatchesIntersectUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sp, err := NewSpace(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, density := range []float64{0, 0.05, 0.6} {
		acc := randomDenseDensity(rng, sp, 0.2)
		drv := randomDenseDensity(rng, sp, density)
		other := randomDenseDensity(rng, sp, 0.5)
		want := acc.Clone()
		join := drv.Clone()
		join.IntersectWith(other)
		want.UnionWith(join)
		got := acc.Clone()
		got.UnionAndSparse(drv, other)
		if !got.Equal(want) {
			t.Fatalf("density %v: UnionAndSparse disagrees", density)
		}
	}
}

func TestDifferenceSparseMatchesDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sp, err := NewSpace(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, density := range []float64{0, 0.05, 0.9} {
		a := randomDenseDensity(rng, sp, density)
		b := randomDenseDensity(rng, sp, 0.4)
		want := a.Clone()
		want.DifferenceWith(b)
		got := a.Clone()
		remaining := got.DifferenceSparse(b)
		if !got.Equal(want) {
			t.Fatalf("density %v: DifferenceSparse disagrees with DifferenceWith", density)
		}
		if remaining != want.Count() {
			t.Fatalf("density %v: remaining=%d want %d", density, remaining, want.Count())
		}
	}
}

func TestExistsAxisSparseMatchesExistsAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, shape := range []struct{ k, n int }{{1, 4}, {2, 6}, {3, 5}, {4, 3}} {
		sp, err := NewSpace(shape.k, shape.n)
		if err != nil {
			t.Fatal(err)
		}
		for _, density := range []float64{0, 0.001, 0.02, 0.5} {
			d := randomDenseDensity(rng, sp, density)
			for axis := 0; axis < shape.k; axis++ {
				want := d.ExistsAxis(axis)
				got := d.ExistsAxisSparse(axis)
				if !got.Equal(want) {
					t.Fatalf("k=%d n=%d density=%v axis=%d: ExistsAxisSparse disagrees",
						shape.k, shape.n, density, axis)
				}
			}
		}
	}
}
