package relation

// Relation is the read-only view common to the two materialized
// representations: Dense (an nᵏ-bit bitmap, word-parallel kernels, bounded by
// MaxDenseBits) and Sparse (a sorted block of tuple codes, memory
// proportional to the tuple count, bounded only by MaxSparseCode). The
// evaluators pick a representation per plan node — dense for hot small
// spaces, sparse for large ones — and convert at the boundaries; this
// interface is what conversion-agnostic consumers (stats, answer extraction,
// tests) program against.
type Relation interface {
	// Arity returns the number of columns k.
	Arity() int
	// Domain returns the domain size n.
	Domain() int
	// Count returns the number of tuples.
	Count() int
	// Contains reports membership of a tuple.
	Contains(Tuple) bool
	// ForEach visits every tuple in ascending row-major order. The tuple
	// may be reused across calls; clone to retain.
	ForEach(func(Tuple))
	// ToSet materializes the map-backed representation.
	ToSet() *Set
}

var (
	_ Relation = (*Dense)(nil)
	_ Relation = (*Sparse)(nil)
)

// Arity returns the relation's arity (its space's arity).
func (d *Dense) Arity() int { return d.sp.Arity() }

// Domain returns the domain size (its space's domain).
func (d *Dense) Domain() int { return d.sp.Domain() }
