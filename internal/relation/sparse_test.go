package relation

import (
	"math/rand"
	"testing"
)

// randomSparseDense draws a random relation in both representations over a
// shared shape.
func randomSparseDense(t *testing.T, r *rand.Rand, k, n int) (*Sparse, *Dense) {
	t.Helper()
	sp := MustSpace(k, n)
	d := sp.Empty()
	s := MustSparse(k, n)
	size := sp.Size()
	if size > 0 {
		count := r.Intn(size + 1)
		for i := 0; i < count; i++ {
			idx := r.Intn(size)
			d.AddIndex(idx)
			s.codes = append(s.codes, uint64(idx))
		}
	}
	s.canon()
	return s, d
}

// requireSame fails unless the sparse and dense relations hold exactly the
// same tuples (byte-identical answers through ToSet).
func requireSame(t *testing.T, label string, s *Sparse, d *Dense) {
	t.Helper()
	if !s.sorted() {
		t.Fatalf("%s: sparse block not canonical", label)
	}
	if s.Count() != d.Count() {
		t.Fatalf("%s: count %d vs dense %d", label, s.Count(), d.Count())
	}
	if !s.ToSet().Equal(d.ToSet()) {
		t.Fatalf("%s: tuple sets differ:\nsparse %v\ndense  %v", label, s.ToSet(), d.ToSet())
	}
}

// TestSparsePrimitivesMatchDenseOracle pins every Sparse primitive —
// intersect, union, difference, project, exists-axis (DropAxis), forall-axis
// (AllAxis), complement, widening and conversions — byte-identical to the
// Dense word-parallel kernels on random relations over every feasible small
// shape.
func TestSparsePrimitivesMatchDenseOracle(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 400; iter++ {
		k := 1 + r.Intn(3)
		n := 1 + r.Intn(5)
		sp := MustSpace(k, n)
		sa, da := randomSparseDense(t, r, k, n)
		sb, db := randomSparseDense(t, r, k, n)

		requireSame(t, "identity", sa, da)
		requireSame(t, "intersect", sa.Intersect(sb), func() *Dense {
			out := da.Clone()
			out.IntersectWith(db)
			return out
		}())
		requireSame(t, "union", sa.Union(sb), func() *Dense {
			out := da.Clone()
			out.UnionWith(db)
			return out
		}())
		requireSame(t, "difference", sa.Difference(sb), func() *Dense {
			out := da.Clone()
			out.DifferenceWith(db)
			return out
		}())
		requireSame(t, "complement", sa.Complement(), func() *Dense {
			out := da.Clone()
			out.Complement()
			return out
		}())

		// Per-axis projections against the dense quantifier kernels: the
		// dense ∃/∀ stay full-width (cylindric in the quantified axis), so
		// compare after projecting the dense result onto the surviving axes.
		axis := r.Intn(k)
		rest := make([]int, 0, k-1)
		for i := 0; i < k; i++ {
			if i != axis {
				rest = append(rest, i)
			}
		}
		if k > 1 {
			ex := da.ExistsAxis(axis)
			sEx, err := SparseFromSet(ex.Project(rest), n)
			if err != nil {
				t.Fatal(err)
			}
			requireSame(t, "exists-axis", sa.DropAxis(axis), func() *Dense {
				esp := MustSpace(k-1, n)
				d2, err := sEx.ToDense(esp)
				if err != nil {
					t.Fatal(err)
				}
				return d2
			}())
			fa := da.ForallAxis(axis)
			sFa, err := SparseFromSet(fa.Project(rest), n)
			if err != nil {
				t.Fatal(err)
			}
			if !sa.AllAxis(axis).Equal(sFa) {
				t.Fatalf("forall-axis mismatch: %v vs %v", sa.AllAxis(axis), sFa)
			}
		}

		// General projection (duplicate columns allowed) against Set.Project.
		cols := make([]int, 1+r.Intn(k))
		for i := range cols {
			cols[i] = r.Intn(k)
		}
		wantProj := da.ToSet().Project(cols)
		gotProj := sa.Project(cols).ToSet()
		if !gotProj.Equal(wantProj) {
			t.Fatalf("project %v mismatch: %v vs %v", cols, gotProj, wantProj)
		}

		// Widening: CrossAxis at a random position is the cylinder over the
		// new axis, i.e. FromSparse with the original axes as args.
		pos := r.Intn(k + 1)
		widened, err := sa.CrossAxis(pos)
		if err != nil {
			t.Fatal(err)
		}
		wsp := MustSpace(k+1, n)
		args := make([]int, 0, k)
		for i := 0; i <= k; i++ {
			if i != pos {
				args = append(args, i)
			}
		}
		wantWide, err := wsp.FromSparse(sa, args)
		if err != nil {
			t.Fatal(err)
		}
		requireSame(t, "cross-axis", widened, wantWide)

		// Round trips.
		requireSame(t, "to-dense", sa, func() *Dense {
			d2, err := sa.ToDense(sp)
			if err != nil {
				t.Fatal(err)
			}
			return d2
		}())
		if !da.ToSparse().Equal(sa) {
			t.Fatalf("dense→sparse round trip differs")
		}
		back, err := SparseFromSet(sa.ToSet(), n)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(sa) {
			t.Fatalf("set round trip differs")
		}

		// Membership probes.
		for probe := 0; probe < 8; probe++ {
			tu := make(Tuple, k)
			for i := range tu {
				tu[i] = r.Intn(n)
			}
			if sa.Contains(tu) != da.Contains(tu) {
				t.Fatalf("contains(%v) disagrees", tu)
			}
		}
	}
}

// TestSparseGallopPaths forces both the galloping and merging branches of
// Intersect and Difference with heavily skewed operand sizes.
func TestSparseGallopPaths(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	k, n := 2, 64
	sp := MustSpace(k, n)
	big := sp.Empty()
	sBig := MustSparse(k, n)
	for i := 0; i < 2000; i++ {
		idx := r.Intn(sp.Size())
		big.AddIndex(idx)
		sBig.codes = append(sBig.codes, uint64(idx))
	}
	sBig.canon()
	small := sp.Empty()
	sSmall := MustSparse(k, n)
	for i := 0; i < 10; i++ {
		idx := r.Intn(sp.Size())
		small.AddIndex(idx)
		sSmall.codes = append(sSmall.codes, uint64(idx))
	}
	sSmall.canon()

	wantInt := big.Clone()
	wantInt.IntersectWith(small)
	requireSame(t, "gallop-intersect", sBig.Intersect(sSmall), wantInt)
	requireSame(t, "gallop-intersect-sym", sSmall.Intersect(sBig), wantInt)

	wantDiff := small.Clone()
	wantDiff.DifferenceWith(big)
	requireSame(t, "gallop-difference", sSmall.Difference(sBig), wantDiff)
}

// TestSparseShapeLimits checks the code-space guard: shapes beyond
// MaxSparseCode are rejected, while shapes far beyond MaxDenseBits are
// accepted — the whole point of the sparse layout.
func TestSparseShapeLimits(t *testing.T) {
	if _, err := NewSparse(3, 10000); err != nil {
		t.Fatalf("3-ary over 10k must be sparse-feasible: %v", err)
	}
	if _, err := NewSpace(3, 10000); err == nil {
		t.Fatalf("3-ary over 10k should exceed MaxDenseBits")
	}
	if _, err := NewSparse(11, 1<<16); err == nil {
		t.Fatalf("code space 2^176 must be rejected")
	}
	s := MustSparse(3, 10000)
	if s.SpaceSize() != 1_000_000_000_000 {
		t.Fatalf("space size = %d", s.SpaceSize())
	}
}

// TestFromSparseScratchBalance pins the Release discipline of the
// sparse→dense conversion: success hands exactly one bitmap to the caller,
// and the error path returns its partial bitmap to the pool, leaving the
// scratch balance unchanged.
func TestFromSparseScratchBalance(t *testing.T) {
	sp := MustSpace(3, 4)
	src, err := SparseOf(2, 4, Tuple{1, 2}, Tuple{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	base := sp.ScratchOutstanding()
	d, err := sp.FromSparse(src, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.ScratchOutstanding(); got != base+1 {
		t.Fatalf("success path scratch balance %d, want %d", got, base+1)
	}
	want, err := sp.FromAtom(src.ToSet(), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(want) {
		t.Fatalf("FromSparse disagrees with FromAtom: %v vs %v", d, want)
	}
	d.Release()
	want.Release()
	if got := sp.ScratchOutstanding(); got != base {
		t.Fatalf("scratch balance %d after release, want %d", got, base)
	}

	// Error paths: arity mismatch, axis out of range, domain mismatch. None
	// may move the balance.
	if _, err := sp.FromSparse(src, []int{0}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := sp.FromSparse(src, []int{0, 9}); err == nil {
		t.Fatal("axis out of range accepted")
	}
	other := MustSparse(2, 5)
	if _, err := sp.FromSparse(other, []int{0, 1}); err == nil {
		t.Fatal("domain mismatch accepted")
	}
	if got := sp.ScratchOutstanding(); got != base {
		t.Fatalf("error paths moved scratch balance to %d, want %d", got, base)
	}
}
