package relation

import (
	"fmt"
	"strings"
)

// Set is a sparse relation: a set of tuples of one fixed arity over an
// unbounded integer domain. Sets store database relations, query answers,
// and back the classical relational-algebra operators.
type Set struct {
	arity int
	m     map[string]Tuple
}

// NewSet returns an empty set of the given arity.
func NewSet(arity int) *Set {
	if arity < 0 {
		panic(fmt.Sprintf("relation: negative arity %d", arity))
	}
	return &Set{arity: arity, m: make(map[string]Tuple)}
}

// SetOf builds a set from tuples. All tuples must share the given arity.
func SetOf(arity int, tuples ...Tuple) *Set {
	s := NewSet(arity)
	for _, t := range tuples {
		s.Add(t)
	}
	return s
}

func tupleKey(t Tuple) string {
	var b strings.Builder
	b.Grow(len(t) * 4)
	for _, v := range t {
		b.WriteByte(byte(v >> 24))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v))
	}
	return b.String()
}

// Arity returns the arity of the set's tuples.
func (s *Set) Arity() int { return s.arity }

// Len returns the number of tuples.
func (s *Set) Len() int { return len(s.m) }

// Add inserts a copy of t. It panics on arity mismatch (programmer error).
func (s *Set) Add(t Tuple) {
	if len(t) != s.arity {
		panic(fmt.Sprintf("relation: adding %d-tuple to set of arity %d", len(t), s.arity))
	}
	k := tupleKey(t)
	if _, ok := s.m[k]; !ok {
		s.m[k] = t.Clone()
	}
}

// Remove deletes t if present.
func (s *Set) Remove(t Tuple) { delete(s.m, tupleKey(t)) }

// Contains reports whether t is in the set.
func (s *Set) Contains(t Tuple) bool {
	if len(t) != s.arity {
		return false
	}
	_, ok := s.m[tupleKey(t)]
	return ok
}

// ForEach calls fn on every tuple, in unspecified order. The callback must
// not mutate the tuple.
func (s *Set) ForEach(fn func(Tuple)) {
	for _, t := range s.m {
		fn(t)
	}
}

// Tuples returns the tuples in canonical sorted order.
func (s *Set) Tuples() []Tuple {
	out := make([]Tuple, 0, len(s.m))
	for _, t := range s.m {
		out = append(out, t)
	}
	SortTuples(out)
	return out
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := NewSet(s.arity)
	for k, t := range s.m {
		c.m[k] = t
	}
	return c
}

// Equal reports whether s and o contain the same tuples.
func (s *Set) Equal(o *Set) bool {
	if s.arity != o.arity || len(s.m) != len(o.m) {
		return false
	}
	for k := range s.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every tuple of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	if s.arity != o.arity {
		return false
	}
	for k := range s.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

// Union returns s ∪ o.
func (s *Set) Union(o *Set) *Set {
	s.mustMatch(o)
	out := s.Clone()
	for k, t := range o.m {
		out.m[k] = t
	}
	return out
}

// Intersect returns s ∩ o.
func (s *Set) Intersect(o *Set) *Set {
	s.mustMatch(o)
	out := NewSet(s.arity)
	for k, t := range s.m {
		if _, ok := o.m[k]; ok {
			out.m[k] = t
		}
	}
	return out
}

// Difference returns s \ o.
func (s *Set) Difference(o *Set) *Set {
	s.mustMatch(o)
	out := NewSet(s.arity)
	for k, t := range s.m {
		if _, ok := o.m[k]; !ok {
			out.m[k] = t
		}
	}
	return out
}

func (s *Set) mustMatch(o *Set) {
	if s.arity != o.arity {
		panic(fmt.Sprintf("relation: arity mismatch %d vs %d", s.arity, o.arity))
	}
}

// Project returns { (t_{cols[0]}, …) | t ∈ s }, deduplicated.
func (s *Set) Project(cols []int) *Set {
	for _, c := range cols {
		if c < 0 || c >= s.arity {
			panic(fmt.Sprintf("relation: projection column %d out of arity %d", c, s.arity))
		}
	}
	out := NewSet(len(cols))
	row := make(Tuple, len(cols))
	for _, t := range s.m {
		for i, c := range cols {
			row[i] = t[c]
		}
		out.Add(row)
	}
	return out
}

// Product returns the cross product s × o: tuples are concatenations.
func (s *Set) Product(o *Set) *Set {
	out := NewSet(s.arity + o.arity)
	row := make(Tuple, s.arity+o.arity)
	for _, a := range s.m {
		copy(row, a)
		for _, b := range o.m {
			copy(row[s.arity:], b)
			out.Add(row)
		}
	}
	return out
}

// SelectEq returns { t ∈ s | t_i = t_j }.
func (s *Set) SelectEq(i, j int) *Set {
	if i < 0 || i >= s.arity || j < 0 || j >= s.arity {
		panic(fmt.Sprintf("relation: selection columns (%d,%d) out of arity %d", i, j, s.arity))
	}
	out := NewSet(s.arity)
	for k, t := range s.m {
		if t[i] == t[j] {
			out.m[k] = t
		}
	}
	return out
}

// SelectConst returns { t ∈ s | t_i = v }.
func (s *Set) SelectConst(i, v int) *Set {
	if i < 0 || i >= s.arity {
		panic(fmt.Sprintf("relation: selection column %d out of arity %d", i, s.arity))
	}
	out := NewSet(s.arity)
	for k, t := range s.m {
		if t[i] == v {
			out.m[k] = t
		}
	}
	return out
}

// JoinOn is one equality condition of an equijoin: left column = right column.
type JoinOn struct {
	Left, Right int
}

// Join returns the equijoin of s and o under the given conditions; result
// tuples are the concatenation of the matching left and right tuples.
// It hash-partitions the smaller operand on the join key.
func (s *Set) Join(o *Set, on []JoinOn) *Set {
	for _, c := range on {
		if c.Left < 0 || c.Left >= s.arity || c.Right < 0 || c.Right >= o.arity {
			panic(fmt.Sprintf("relation: join condition %+v out of arities (%d,%d)", c, s.arity, o.arity))
		}
	}
	out := NewSet(s.arity + o.arity)
	// Build a hash index of o keyed by its join columns.
	idx := make(map[string][]Tuple)
	key := make(Tuple, len(on))
	for _, b := range o.m {
		for i, c := range on {
			key[i] = b[c.Right]
		}
		k := tupleKey(key)
		idx[k] = append(idx[k], b)
	}
	row := make(Tuple, s.arity+o.arity)
	for _, a := range s.m {
		for i, c := range on {
			key[i] = a[c.Left]
		}
		for _, b := range idx[tupleKey(key)] {
			copy(row, a)
			copy(row[s.arity:], b)
			out.Add(row)
		}
	}
	return out
}

// Semijoin returns { t ∈ s | ∃u ∈ o matching t under the conditions }.
// It is the workhorse of the Yannakakis acyclic-join algorithm.
func (s *Set) Semijoin(o *Set, on []JoinOn) *Set {
	for _, c := range on {
		if c.Left < 0 || c.Left >= s.arity || c.Right < 0 || c.Right >= o.arity {
			panic(fmt.Sprintf("relation: semijoin condition %+v out of arities (%d,%d)", c, s.arity, o.arity))
		}
	}
	keys := make(map[string]bool)
	key := make(Tuple, len(on))
	for _, b := range o.m {
		for i, c := range on {
			key[i] = b[c.Right]
		}
		keys[tupleKey(key)] = true
	}
	out := NewSet(s.arity)
	for k, a := range s.m {
		for i, c := range on {
			key[i] = a[c.Left]
		}
		if keys[tupleKey(key)] {
			out.m[k] = a
		}
	}
	return out
}

// ToDense converts the set into the dense representation in the given space.
// Every tuple must lie inside the space's domain.
func (s *Set) ToDense(sp *Space) (*Dense, error) {
	if s.arity != sp.Arity() {
		return nil, fmt.Errorf("relation: converting arity-%d set into space of arity %d", s.arity, sp.Arity())
	}
	d := sp.Empty()
	for _, t := range s.m {
		for _, v := range t {
			if v < 0 || v >= sp.Domain() {
				return nil, fmt.Errorf("relation: tuple %v outside domain of size %d", t, sp.Domain())
			}
		}
		d.Add(t)
	}
	return d, nil
}

// MaxElement returns the largest domain element mentioned in the set, or −1
// if the set is empty or 0-ary.
func (s *Set) MaxElement() int {
	max := -1
	for _, t := range s.m {
		for _, v := range t {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// String renders the set as a sorted tuple list, e.g. "{(0, 1), (2, 3)}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.Tuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
