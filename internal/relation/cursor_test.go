package relation

import (
	"math/rand"
	"testing"
)

// TestCursorOrderIdentity pins the load-bearing order contract: the dense
// cursor, the sparse cursor, and Set.Tuples (sorted) all enumerate the same
// relation in the same lexicographic order.
func TestCursorOrderIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		k := 1 + r.Intn(3)
		n := 1 + r.Intn(7)
		sp := MustSpace(k, n)
		d := randomDense(r, sp)
		want := d.ToSet().Tuples()

		dc := NewDenseCursor(d, false)
		var gotDense []Tuple
		for tp, ok := dc.Next(); ok; tp, ok = dc.Next() {
			gotDense = append(gotDense, append(Tuple(nil), tp...))
		}
		if dc.Count() != len(want) {
			t.Fatalf("k=%d n=%d: dense Count=%d, want %d", k, n, dc.Count(), len(want))
		}

		sc := NewSparseCursor(d.ToSparse())
		var gotSparse []Tuple
		for tp, ok := sc.Next(); ok; tp, ok = sc.Next() {
			gotSparse = append(gotSparse, append(Tuple(nil), tp...))
		}
		if sc.Count() != len(want) {
			t.Fatalf("k=%d n=%d: sparse Count=%d, want %d", k, n, sc.Count(), len(want))
		}

		for name, got := range map[string][]Tuple{"dense": gotDense, "sparse": gotSparse} {
			if len(got) != len(want) {
				t.Fatalf("k=%d n=%d %s: %d tuples, want %d", k, n, name, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("k=%d n=%d %s: tuple %d = %v, want %v", k, n, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCursorSkipEquivalence checks that Skip(k) lands exactly where k Next
// calls would, for both cursors, at word boundaries and past the end.
func TestCursorSkipEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		sp := MustSpace(2, 1+r.Intn(16))
		d := randomDense(r, sp)
		all := d.ToSet().Tuples()
		k := r.Intn(len(all) + 3)
		wantSkip := k
		if wantSkip > len(all) {
			wantSkip = len(all)
		}

		dc := NewDenseCursor(d, false)
		if got := dc.Skip(k); got != wantSkip {
			t.Fatalf("dense Skip(%d) = %d, want %d", k, got, wantSkip)
		}
		sc := NewSparseCursor(d.ToSparse())
		if got := sc.Skip(k); got != wantSkip {
			t.Fatalf("sparse Skip(%d) = %d, want %d", k, got, wantSkip)
		}
		for i := k; ; i++ {
			dt, dok := dc.Next()
			st, sok := sc.Next()
			if i >= len(all) {
				if dok || sok {
					t.Fatalf("cursor yielded tuple past end (dense=%v sparse=%v)", dok, sok)
				}
				break
			}
			if !dok || !st.Equal(all[i]) || !sok || !dt.Equal(all[i]) {
				t.Fatalf("after Skip(%d), tuple %d: dense=%v(%v) sparse=%v(%v), want %v",
					k, i, dt, dok, st, sok, all[i])
			}
		}
	}
}

// TestDenseCursorCloseReleases checks that an owning cursor returns its
// bitmap to the space pool on Close, and that Close is idempotent.
func TestDenseCursorCloseReleases(t *testing.T) {
	sp := MustSpace(2, 8)
	before := sp.ScratchOutstanding()
	d := sp.Empty()
	d.Add(Tuple{1, 2})
	c := NewDenseCursor(d, true)
	if tp, ok := c.Next(); !ok || !tp.Equal(Tuple{1, 2}) {
		t.Fatalf("Next = %v, %v", tp, ok)
	}
	c.Close()
	c.Close()
	if got := sp.ScratchOutstanding(); got != before {
		t.Fatalf("ScratchOutstanding after Close = %d, want %d", got, before)
	}
	// A non-owning cursor must leave the relation alive.
	d2 := sp.Empty()
	defer d2.Release()
	d2.Add(Tuple{3, 4})
	c2 := NewDenseCursor(d2, false)
	c2.Close()
	if !d2.Contains(Tuple{3, 4}) {
		t.Fatal("non-owning Close released the relation")
	}
}
