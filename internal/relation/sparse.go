package relation

import (
	"fmt"
	"sort"
)

// MaxSparseCode bounds the code space of a Sparse relation: nᵏ must fit a
// uint64 with headroom for index arithmetic. Unlike MaxDenseBits this is not
// a memory bound — a Sparse relation stores only its tuples — it merely keeps
// the row-major codec exact.
const MaxSparseCode = uint64(1) << 62

// Sparse is a k-ary relation over the domain {0, …, n−1} stored as a sorted,
// deduplicated block of row-major tuple codes: tuple (t₀, …, t_{k−1}) is the
// uint64 Σ tᵢ·n^{k−1−i}, the same codec as Space but without the nᵏ ≤
// MaxDenseBits ceiling. Memory is 8 bytes per tuple regardless of nᵏ, which
// is what lets a k=3 query over n=10⁴ (a 10¹²-point dense space) evaluate in
// megabytes.
//
// The sorted-block layout gives logarithmic membership, linear merge-union
// and merge-difference, and a galloping intersection that degrades gracefully
// when one operand is much smaller than the other. All operations return new
// relations; a Sparse is immutable after construction.
type Sparse struct {
	k, n   int
	stride []uint64 // stride[i] = n^{k−1−i}
	codes  []uint64 // sorted ascending, no duplicates
}

// sparseShape validates (k, n) and returns the stride table.
func sparseShape(k, n int) ([]uint64, error) {
	if k < 0 {
		return nil, fmt.Errorf("relation: negative arity %d", k)
	}
	if n < 0 {
		return nil, fmt.Errorf("relation: negative domain size %d", n)
	}
	size := uint64(1)
	for i := 0; i < k; i++ {
		if n == 0 {
			size = 0
			break
		}
		if size > MaxSparseCode/uint64(n) {
			return nil, fmt.Errorf("relation: sparse code space %d^%d exceeds %d", n, k, MaxSparseCode)
		}
		size *= uint64(n)
	}
	stride := make([]uint64, k)
	s := uint64(1)
	for i := k - 1; i >= 0; i-- {
		stride[i] = s
		if n > 0 {
			s *= uint64(n)
		}
	}
	return stride, nil
}

// NewSparse returns the empty k-ary sparse relation over a domain of n
// elements. It fails only if the code space nᵏ does not fit MaxSparseCode.
func NewSparse(k, n int) (*Sparse, error) {
	stride, err := sparseShape(k, n)
	if err != nil {
		return nil, err
	}
	return &Sparse{k: k, n: n, stride: stride}, nil
}

// MustSparse is NewSparse for statically valid shapes; it panics on error.
func MustSparse(k, n int) *Sparse {
	s, err := NewSparse(k, n)
	if err != nil {
		panic(err)
	}
	return s
}

// SparseOf builds a sparse relation from explicit tuples.
func SparseOf(k, n int, tuples ...Tuple) (*Sparse, error) {
	s, err := NewSparse(k, n)
	if err != nil {
		return nil, err
	}
	s.codes = make([]uint64, 0, len(tuples))
	for _, t := range tuples {
		c, err := s.EncodeChecked(t)
		if err != nil {
			return nil, err
		}
		s.codes = append(s.codes, c)
	}
	s.canon()
	return s, nil
}

// SparseFromSet converts a map-backed Set into the sparse layout over a
// domain of n elements. Components outside [0, n) are rejected.
func SparseFromSet(set *Set, n int) (*Sparse, error) {
	s, err := NewSparse(set.Arity(), n)
	if err != nil {
		return nil, err
	}
	s.codes = make([]uint64, 0, set.Len())
	var convErr error
	set.ForEach(func(t Tuple) {
		if convErr != nil {
			return
		}
		c, err := s.EncodeChecked(t)
		if err != nil {
			convErr = err
			return
		}
		s.codes = append(s.codes, c)
	})
	if convErr != nil {
		return nil, convErr
	}
	s.canon()
	return s, nil
}

// sparseFromCodes wraps a code slice that the caller may not reuse,
// canonicalizing it (sort + dedup).
func sparseFromCodes(k, n int, stride []uint64, codes []uint64) *Sparse {
	s := &Sparse{k: k, n: n, stride: stride, codes: codes}
	s.canon()
	return s
}

// canon sorts and deduplicates the code block in place.
func (s *Sparse) canon() {
	if len(s.codes) < 2 {
		return
	}
	sort.Slice(s.codes, func(i, j int) bool { return s.codes[i] < s.codes[j] })
	w := 1
	for i := 1; i < len(s.codes); i++ {
		if s.codes[i] != s.codes[w-1] {
			s.codes[w] = s.codes[i]
			w++
		}
	}
	s.codes = s.codes[:w]
}

// sorted reports whether codes are strictly ascending (debug invariant).
func (s *Sparse) sorted() bool {
	for i := 1; i < len(s.codes); i++ {
		if s.codes[i] <= s.codes[i-1] {
			return false
		}
	}
	return true
}

// Arity returns k.
func (s *Sparse) Arity() int { return s.k }

// Domain returns n, the number of domain elements.
func (s *Sparse) Domain() int { return s.n }

// Count returns the number of tuples.
func (s *Sparse) Count() int { return len(s.codes) }

// IsEmpty reports whether the relation has no tuples.
func (s *Sparse) IsEmpty() bool { return len(s.codes) == 0 }

// SpaceSize returns nᵏ, the number of points of the (virtual) full space.
func (s *Sparse) SpaceSize() uint64 {
	if s.k == 0 {
		return 1
	}
	if s.n == 0 {
		return 0
	}
	return s.stride[0] * uint64(s.n)
}

// SameShape reports whether two sparse relations have identical arity and
// domain.
func (s *Sparse) SameShape(o *Sparse) bool { return s.k == o.k && s.n == o.n }

// Encode maps a tuple to its code; it panics on shape errors (programmer
// error), mirroring Space.Encode.
func (s *Sparse) Encode(t Tuple) uint64 {
	c, err := s.EncodeChecked(t)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// EncodeChecked maps a tuple to its code, reporting out-of-domain components
// as errors (possible for stored database tuples).
func (s *Sparse) EncodeChecked(t Tuple) (uint64, error) {
	if len(t) != s.k {
		return 0, fmt.Errorf("relation: encoding %d-tuple in sparse relation of arity %d", len(t), s.k)
	}
	var c uint64
	for i, v := range t {
		if v < 0 || v >= s.n {
			return 0, fmt.Errorf("relation: component %d outside domain [0,%d)", v, s.n)
		}
		c += uint64(v) * s.stride[i]
	}
	return c, nil
}

// DecodeInto writes the tuple with the given code into dst (allocated when
// nil) and returns it.
func (s *Sparse) DecodeInto(code uint64, dst Tuple) Tuple {
	if dst == nil {
		dst = make(Tuple, s.k)
	}
	for i := 0; i < s.k; i++ {
		dst[i] = int((code / s.stride[i]) % uint64(s.n))
	}
	return dst
}

// Contains reports whether the relation contains t.
func (s *Sparse) Contains(t Tuple) bool {
	c, err := s.EncodeChecked(t)
	if err != nil {
		return false
	}
	return s.ContainsCode(c)
}

// ContainsCode reports membership of a tuple code via binary search.
func (s *Sparse) ContainsCode(c uint64) bool {
	i := sort.Search(len(s.codes), func(i int) bool { return s.codes[i] >= c })
	return i < len(s.codes) && s.codes[i] == c
}

// ForEach calls fn with every tuple in ascending code order. The tuple is
// reused across calls; clone it to retain.
func (s *Sparse) ForEach(fn func(Tuple)) {
	t := make(Tuple, s.k)
	for _, c := range s.codes {
		fn(s.DecodeInto(c, t))
	}
}

// ForEachCode calls fn with every tuple code, ascending.
func (s *Sparse) ForEachCode(fn func(uint64)) {
	for _, c := range s.codes {
		fn(c)
	}
}

// Tuples returns the tuples in ascending code order (which for the row-major
// codec is lexicographic order).
func (s *Sparse) Tuples() []Tuple {
	out := make([]Tuple, len(s.codes))
	for i, c := range s.codes {
		out[i] = s.DecodeInto(c, nil)
	}
	return out
}

// Clone returns an independent copy.
func (s *Sparse) Clone() *Sparse {
	return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: append([]uint64(nil), s.codes...)}
}

// Equal reports whether two relations have the same shape and tuples. Sorted
// canonical blocks make this one linear scan.
func (s *Sparse) Equal(o *Sparse) bool {
	if !s.SameShape(o) || len(s.codes) != len(o.codes) {
		return false
	}
	for i, c := range s.codes {
		if o.codes[i] != c {
			return false
		}
	}
	return true
}

func (s *Sparse) mustMatch(o *Sparse) {
	if !s.SameShape(o) {
		panic(fmt.Sprintf("relation: sparse shape mismatch: %d-ary/%d vs %d-ary/%d", s.k, s.n, o.k, o.n))
	}
}

// gallopRatio is the size skew beyond which Intersect and Difference switch
// from linear merging to binary-searching the smaller operand's codes into
// the larger block.
const gallopRatio = 16

// Intersect returns s ∩ o. When one operand is much smaller the intersection
// gallops: each code of the small side is located in the large side by binary
// search over the remaining suffix, an O(small · log large) bound that beats
// the linear merge exactly when the skew is large.
func (s *Sparse) Intersect(o *Sparse) *Sparse {
	s.mustMatch(o)
	a, b := s.codes, o.codes
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]uint64, 0, len(a))
	if len(a) == 0 {
		return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: out}
	}
	if len(b)/len(a) >= gallopRatio {
		lo := 0
		for _, c := range a {
			i := lo + sort.Search(len(b)-lo, func(i int) bool { return b[lo+i] >= c })
			if i < len(b) && b[i] == c {
				out = append(out, c)
				lo = i + 1
			} else {
				lo = i
			}
			if lo >= len(b) {
				break
			}
		}
		return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: out}
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: out}
}

// Union returns s ∪ o by a linear merge of the two sorted blocks.
func (s *Sparse) Union(o *Sparse) *Sparse {
	s.mustMatch(o)
	a, b := s.codes, o.codes
	if len(a) == 0 {
		return o.Clone()
	}
	if len(b) == 0 {
		return s.Clone()
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: out}
}

// Difference returns s \ o. A much larger o is probed by galloping search
// instead of merged.
func (s *Sparse) Difference(o *Sparse) *Sparse {
	s.mustMatch(o)
	a, b := s.codes, o.codes
	out := make([]uint64, 0, len(a))
	if len(a) == 0 || len(b) == 0 {
		return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: append(out, a...)}
	}
	if len(b)/(len(a)+1) >= gallopRatio {
		lo := 0
		for _, c := range a {
			i := lo + sort.Search(len(b)-lo, func(i int) bool { return b[lo+i] >= c })
			if i >= len(b) || b[i] != c {
				out = append(out, c)
			}
			lo = i
		}
		return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: out}
	}
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j >= len(b) {
			out = append(out, a[i:]...)
			break
		}
		if b[j] != a[i] {
			out = append(out, a[i])
		}
		i++
	}
	return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: out}
}

// Project returns the projection onto the given columns, in order; columns
// may repeat. The result is canonicalized (projection can merge tuples).
func (s *Sparse) Project(cols []int) *Sparse {
	for _, c := range cols {
		if c < 0 || c >= s.k {
			panic(fmt.Sprintf("relation: projection column %d out of arity %d", c, s.k))
		}
	}
	stride, err := sparseShape(len(cols), s.n)
	if err != nil {
		// The target code space is at most the source code space, which was
		// validated at construction.
		panic(err)
	}
	out := make([]uint64, len(s.codes))
	t := make(Tuple, s.k)
	for i, c := range s.codes {
		s.DecodeInto(c, t)
		var nc uint64
		for ci, col := range cols {
			nc += uint64(t[col]) * stride[ci]
		}
		out[i] = nc
	}
	return sparseFromCodes(len(cols), s.n, stride, out)
}

// DropAxis existentially projects axis i away: the (k−1)-ary relation
// { (t₀,…,t_{i−1},t_{i+1},…) | t ∈ s }. It is the per-axis projection the
// sparse evaluator uses for ∃xᵢ.
func (s *Sparse) DropAxis(i int) *Sparse {
	if i < 0 || i >= s.k {
		panic(fmt.Sprintf("relation: axis %d out of arity %d", i, s.k))
	}
	stride, err := sparseShape(s.k-1, s.n)
	if err != nil {
		panic(err)
	}
	si := s.stride[i]
	block := si * uint64(s.n)
	out := make([]uint64, len(s.codes))
	for idx, c := range s.codes {
		out[idx] = (c/block)*si + c%si
	}
	return sparseFromCodes(s.k-1, s.n, stride, out)
}

// AllAxis universally projects axis i away: the (k−1)-ary relation of groups
// whose axis-i fiber is the whole domain — the sparse ∀xᵢ. Codes are grouped
// by their axis-i-removed residue; a group satisfies ∀ exactly when it
// contains n distinct codes (the block is deduplicated, so count equals the
// number of distinct axis-i values).
func (s *Sparse) AllAxis(i int) *Sparse {
	if i < 0 || i >= s.k {
		panic(fmt.Sprintf("relation: axis %d out of arity %d", i, s.k))
	}
	stride, err := sparseShape(s.k-1, s.n)
	if err != nil {
		panic(err)
	}
	if s.n == 0 {
		// Vacuous ∀ over an empty domain: every residue qualifies, but there
		// are no codes at all; the empty result matches the dense convention.
		return &Sparse{k: s.k - 1, n: s.n, stride: stride}
	}
	si := s.stride[i]
	block := si * uint64(s.n)
	groups := make([]uint64, len(s.codes))
	for idx, c := range s.codes {
		groups[idx] = (c/block)*si + c%si
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a] < groups[b] })
	out := groups[:0]
	run := 0
	for idx := 0; idx < len(groups); idx++ {
		run++
		if idx+1 == len(groups) || groups[idx+1] != groups[idx] {
			if run == s.n {
				out = append(out, groups[idx])
			}
			run = 0
		}
	}
	return &Sparse{k: s.k - 1, n: s.n, stride: stride, codes: append([]uint64(nil), out...)}
}

// CrossAxis widens the relation by inserting a full axis at column position
// pos (0 ≤ pos ≤ k): every tuple is replaced by its n extensions. This is the
// cylinder materialization at sparse representation boundaries; the result
// has n·Count() tuples, so callers budget-check before widening.
func (s *Sparse) CrossAxis(pos int) (*Sparse, error) {
	if pos < 0 || pos > s.k {
		panic(fmt.Sprintf("relation: insert position %d out of arity %d", pos, s.k))
	}
	stride, err := sparseShape(s.k+1, s.n)
	if err != nil {
		return nil, err
	}
	// Split each code at the insertion point and interleave all n values of
	// the new axis. The new axis has stride n^{k−pos}; everything above it is
	// scaled by n.
	var below uint64 = 1
	for i := s.k - 1; i >= pos; i-- {
		below *= uint64(s.n)
	}
	out := make([]uint64, 0, len(s.codes)*s.n)
	for _, c := range s.codes {
		hi, lo := c/below, c%below
		base := hi * below * uint64(s.n)
		for v := 0; v < s.n; v++ {
			out = append(out, base+uint64(v)*below+lo)
		}
	}
	return sparseFromCodes(s.k+1, s.n, stride, out), nil
}

// Complement enumerates the codes of the full space not in s. The caller is
// responsible for checking that nᵏ − Count() is an acceptable materialization
// (the eval layer enforces its sparse budget before complementing).
func (s *Sparse) Complement() *Sparse {
	total := s.SpaceSize()
	out := make([]uint64, 0, int(total)-len(s.codes))
	next := 0
	for c := uint64(0); c < total; c++ {
		if next < len(s.codes) && s.codes[next] == c {
			next++
			continue
		}
		out = append(out, c)
	}
	return &Sparse{k: s.k, n: s.n, stride: s.stride, codes: out}
}

// ToSet converts to the map-backed representation.
func (s *Sparse) ToSet() *Set {
	out := NewSet(s.k)
	s.ForEach(func(t Tuple) { out.Add(t) })
	return out
}

// ToDense materializes the relation in a dense space of the same shape.
func (s *Sparse) ToDense(sp *Space) (*Dense, error) {
	if sp.Arity() != s.k || sp.Domain() != s.n {
		return nil, fmt.Errorf("relation: sparse %d-ary/%d into dense space %d-ary/%d", s.k, s.n, sp.Arity(), sp.Domain())
	}
	d := sp.Empty()
	for _, c := range s.codes {
		d.AddIndex(int(c))
	}
	return d, nil
}

// ToSparse converts a dense relation to the sparse layout. Dense space
// indices are already row-major codes, so this is a single ascending scan —
// no sort needed.
func (d *Dense) ToSparse() *Sparse {
	s := MustSparse(d.sp.Arity(), d.sp.Domain())
	s.codes = make([]uint64, 0, d.Count())
	d.ForEachIndex(func(idx int) { s.codes = append(s.codes, uint64(idx)) })
	return s
}

// FromSparse cylindrifies a sparse relation into this full-width space: the
// result contains every point t with (t_{args[0]}, …, t_{args[m−1]}) ∈ src —
// the dense side of a sparse→dense conversion node. Errors release the
// partially built bitmap back to the space's scratch pool before returning.
func (sp *Space) FromSparse(src *Sparse, args []int) (*Dense, error) {
	if len(args) != src.Arity() {
		return nil, fmt.Errorf("relation: atom has %d arguments for relation of arity %d", len(args), src.Arity())
	}
	if src.Domain() != sp.Domain() {
		return nil, fmt.Errorf("relation: domain mismatch %d vs %d", src.Domain(), sp.Domain())
	}
	for _, a := range args {
		if a < 0 || a >= sp.k {
			return nil, fmt.Errorf("relation: atom argument refers to variable %d outside width %d", a, sp.k)
		}
	}
	d := sp.Empty()
	if sp.size == 0 {
		return d, nil
	}
	aa := newAtomAdder(d, args)
	var err error
	t := make(Tuple, src.Arity())
	for _, c := range src.codes {
		src.DecodeInto(c, t)
		if err = aa.add(t); err != nil {
			d.Release()
			return nil, err
		}
	}
	return d, nil
}

// String renders the relation like Set.String, for tests and debugging.
func (s *Sparse) String() string { return s.ToSet().String() }

// SparseBuilder accumulates tuples for a Sparse relation; Build canonicalizes
// once, so bulk construction costs one sort instead of per-insert ordering.
type SparseBuilder struct {
	s *Sparse
}

// NewSparseBuilder starts building a k-ary sparse relation over a domain of
// n elements.
func NewSparseBuilder(k, n int) (*SparseBuilder, error) {
	s, err := NewSparse(k, n)
	if err != nil {
		return nil, err
	}
	return &SparseBuilder{s: s}, nil
}

// Add appends a tuple, validating its components.
func (b *SparseBuilder) Add(t Tuple) error {
	c, err := b.s.EncodeChecked(t)
	if err != nil {
		return err
	}
	b.s.codes = append(b.s.codes, c)
	return nil
}

// AddCode appends a raw tuple code the caller has already validated.
func (b *SparseBuilder) AddCode(c uint64) { b.s.codes = append(b.s.codes, c) }

// Len returns the number of codes added so far (before deduplication).
func (b *SparseBuilder) Len() int { return len(b.s.codes) }

// Build canonicalizes and returns the relation. The builder must not be used
// afterwards.
func (b *SparseBuilder) Build() *Sparse {
	s := b.s
	b.s = nil
	s.canon()
	return s
}
