package relation

import "repro/internal/bitset"

// This file provides streaming cursors over the two relation
// representations. Both walk tuples in ascending code order, which for the
// row-major codec (decreasing strides) is lexicographic tuple order — the
// same order Set.Tuples returns after sorting. That identity is what lets
// the streaming API promise one canonical order regardless of which backend
// produced the answer, and it is pinned by TestCursorOrderIdentity.
//
// Cursors are single-goroutine values: the Tuple returned by Next is reused
// across calls, so callers that retain tuples must clone them.

// DenseCursor enumerates the tuples of a Dense relation lazily, decoding one
// set bit per Next call. Skip advances over whole 64-bit words by popcount
// without decoding the bits it discards, so seeking to OFFSET costs
// O(offset/64 + words scanned) rather than O(offset) decodes.
type DenseCursor struct {
	d   *Dense
	bc  bitset.Cursor
	buf Tuple
	own bool // Close releases d back to its space's pool
}

// NewDenseCursor returns a cursor over d. If own is true, Close releases d
// back to its space's scratch pool; pass own=true exactly when the caller
// transfers its reference to the cursor.
func NewDenseCursor(d *Dense, own bool) *DenseCursor {
	return &DenseCursor{d: d, bc: d.bits.Cursor(), buf: make(Tuple, d.sp.k), own: own}
}

// Next returns the next tuple in ascending index (lexicographic) order. The
// returned tuple is reused by subsequent calls.
func (c *DenseCursor) Next() (Tuple, bool) {
	idx, ok := c.bc.Next()
	if !ok {
		return nil, false
	}
	return c.d.sp.Decode(idx, c.buf), true
}

// Skip advances past up to n tuples and returns how many were skipped.
func (c *DenseCursor) Skip(n int) int { return c.bc.Skip(n) }

// Count returns the exact number of tuples in the underlying relation
// (independent of cursor position) — a word-parallel popcount.
func (c *DenseCursor) Count() int { return c.d.Count() }

// Close releases the underlying Dense if the cursor owns it. Safe to call
// more than once.
func (c *DenseCursor) Close() {
	if c.own && c.d != nil && c.d.bits != nil {
		c.d.Release()
	}
	c.d = nil
	c.bc = bitset.Cursor{}
}

// SparseCursor enumerates the tuples of a Sparse relation by walking its
// sorted code slice. Skip is O(1): a slice index jump.
type SparseCursor struct {
	s   *Sparse
	i   int
	buf Tuple
}

// NewSparseCursor returns a cursor over s.
func NewSparseCursor(s *Sparse) *SparseCursor {
	return &SparseCursor{s: s, buf: make(Tuple, s.k)}
}

// Next returns the next tuple in ascending code (lexicographic) order. The
// returned tuple is reused by subsequent calls.
func (c *SparseCursor) Next() (Tuple, bool) {
	if c.s == nil || c.i >= len(c.s.codes) {
		return nil, false
	}
	t := c.s.DecodeInto(c.s.codes[c.i], c.buf)
	c.i++
	return t, true
}

// Skip advances past up to n tuples and returns how many were skipped.
func (c *SparseCursor) Skip(n int) int {
	if c.s == nil {
		return 0
	}
	rem := len(c.s.codes) - c.i
	if n > rem {
		n = rem
	}
	c.i += n
	return n
}

// Count returns the exact number of tuples in the underlying relation.
func (c *SparseCursor) Count() int {
	if c.s == nil {
		return 0
	}
	return len(c.s.codes)
}

// Close detaches the cursor. Sparse relations are plain heap values, so
// there is nothing to release; Close exists for interface symmetry.
func (c *SparseCursor) Close() { c.s = nil }
