package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(-1, 3); err == nil {
		t.Fatal("negative arity accepted")
	}
	if _, err := NewSpace(2, -1); err == nil {
		t.Fatal("negative domain accepted")
	}
	if _, err := NewSpace(64, 1000); err == nil {
		t.Fatal("overflowing space accepted")
	}
	sp, err := NewSpace(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 125 || sp.Arity() != 3 || sp.Domain() != 5 {
		t.Fatalf("space dims wrong: %+v", sp)
	}
}

func TestZeroArySpace(t *testing.T) {
	sp := MustSpace(0, 7)
	if sp.Size() != 1 {
		t.Fatalf("0-ary space has size %d, want 1", sp.Size())
	}
	if sp.Encode(Tuple{}) != 0 {
		t.Fatal("empty tuple encodes nonzero")
	}
	d := sp.Empty()
	if d.Contains(Tuple{}) {
		t.Fatal("empty 0-ary relation contains ()")
	}
	d.Add(Tuple{})
	if !d.Contains(Tuple{}) {
		t.Fatal("0-ary relation missing () after add")
	}
	if d.Count() != 1 {
		t.Fatalf("0-ary count = %d", d.Count())
	}
}

func TestEmptyDomainSpace(t *testing.T) {
	sp := MustSpace(2, 0)
	if sp.Size() != 0 {
		t.Fatalf("size = %d, want 0", sp.Size())
	}
	if sp.Full().Count() != 0 {
		t.Fatal("Full over empty domain nonempty")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sp := MustSpace(3, 4)
	seen := make(map[int]bool)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 4; c++ {
				tp := Tuple{a, b, c}
				idx := sp.Encode(tp)
				if idx < 0 || idx >= sp.Size() {
					t.Fatalf("index %d out of range for %v", idx, tp)
				}
				if seen[idx] {
					t.Fatalf("index collision at %v", tp)
				}
				seen[idx] = true
				if got := sp.Decode(idx, nil); !got.Equal(tp) {
					t.Fatalf("Decode(Encode(%v)) = %v", tp, got)
				}
				for i := 0; i < 3; i++ {
					if sp.Coord(idx, i) != tp[i] {
						t.Fatalf("Coord(%d,%d) = %d, want %d", idx, i, sp.Coord(idx, i), tp[i])
					}
				}
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("codec covered %d indices, want 64", len(seen))
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(5)
		n := r.Intn(6) + 1
		sp := MustSpace(k, n)
		tp := make(Tuple, k)
		for i := range tp {
			tp[i] = r.Intn(n)
		}
		return sp.Decode(sp.Encode(tp), nil).Equal(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePanics(t *testing.T) {
	sp := MustSpace(2, 3)
	for _, bad := range []Tuple{{0}, {0, 3}, {-1, 0}, {0, 1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Encode(%v) did not panic", bad)
				}
			}()
			sp.Encode(bad)
		}()
	}
}
