package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomDense(r *rand.Rand, sp *Space) *Dense {
	d := sp.Empty()
	for idx := 0; idx < sp.Size(); idx++ {
		if r.Intn(2) == 0 {
			d.bits.Set(idx)
		}
	}
	return d
}

func TestDenseBasicOps(t *testing.T) {
	sp := MustSpace(2, 3)
	d := sp.Empty()
	d.Add(Tuple{0, 1})
	d.Add(Tuple{2, 2})
	if !d.Contains(Tuple{0, 1}) || !d.Contains(Tuple{2, 2}) || d.Contains(Tuple{1, 0}) {
		t.Fatal("membership wrong")
	}
	if d.Count() != 2 {
		t.Fatalf("Count = %d", d.Count())
	}
	d.Remove(Tuple{0, 1})
	if d.Contains(Tuple{0, 1}) || d.Count() != 1 {
		t.Fatal("Remove failed")
	}
}

func TestDenseBooleanOps(t *testing.T) {
	sp := MustSpace(2, 4)
	r := rand.New(rand.NewSource(7))
	a := randomDense(r, sp)
	b := randomDense(r, sp)

	u := a.Clone()
	u.UnionWith(b)
	i := a.Clone()
	i.IntersectWith(b)
	df := a.Clone()
	df.DifferenceWith(b)
	c := a.Clone()
	c.Complement()

	sp.Full().ForEach(func(tp Tuple) {
		ina, inb := a.Contains(tp), b.Contains(tp)
		if u.Contains(tp) != (ina || inb) {
			t.Fatalf("union wrong at %v", tp)
		}
		if i.Contains(tp) != (ina && inb) {
			t.Fatalf("intersect wrong at %v", tp)
		}
		if df.Contains(tp) != (ina && !inb) {
			t.Fatalf("difference wrong at %v", tp)
		}
		if c.Contains(tp) != !ina {
			t.Fatalf("complement wrong at %v", tp)
		}
	})
}

func TestDiagonal(t *testing.T) {
	sp := MustSpace(3, 3)
	d := sp.Diagonal(0, 2)
	d.ForEach(func(tp Tuple) {
		if tp[0] != tp[2] {
			t.Fatalf("diagonal contains %v", tp)
		}
	})
	if d.Count() != 9 { // 3 choices for the equal pair × 3 for the middle
		t.Fatalf("diagonal count = %d, want 9", d.Count())
	}
	if !sp.Diagonal(1, 1).Equal(sp.Full()) {
		t.Fatal("Diagonal(i,i) should be the full relation")
	}
}

func TestExistsAxis(t *testing.T) {
	sp := MustSpace(2, 3)
	d := sp.Empty()
	d.Add(Tuple{1, 2})
	// ∃x₂ over axis 1: every (1, v) is in the result; nothing else.
	e := d.ExistsAxis(1)
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			want := a == 1
			if e.Contains(Tuple{a, b}) != want {
				t.Fatalf("ExistsAxis wrong at (%d,%d)", a, b)
			}
		}
	}
}

func TestForallAxis(t *testing.T) {
	sp := MustSpace(2, 3)
	d := sp.Empty()
	for b := 0; b < 3; b++ {
		d.Add(Tuple{0, b})
	}
	d.Add(Tuple{1, 0})
	f := d.ForallAxis(1)
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			want := a == 0
			if f.Contains(Tuple{a, b}) != want {
				t.Fatalf("ForallAxis wrong at (%d,%d)", a, b)
			}
		}
	}
}

func TestQuickForallIsDualOfExists(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(3) + 1
		n := r.Intn(4) + 1
		sp := MustSpace(k, n)
		d := randomDense(r, sp)
		axis := r.Intn(k)
		// ∀x φ == ¬∃x ¬φ
		direct := d.ForallAxis(axis)
		nd := d.Clone()
		nd.Complement()
		dual := nd.ExistsAxis(axis)
		dual.Complement()
		return direct.Equal(dual)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExistsIdempotentAndCylindric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(3) + 1
		n := r.Intn(4) + 1
		sp := MustSpace(k, n)
		d := randomDense(r, sp)
		axis := r.Intn(k)
		e := d.ExistsAxis(axis)
		if !e.ExistsAxis(axis).Equal(e) {
			return false
		}
		if !d.SubsetOf(e) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromAtom(t *testing.T) {
	sp := MustSpace(3, 3) // variables x1,x2,x3
	edges := SetOf(2, Tuple{0, 1}, Tuple{1, 2})

	// Atom E(x2, x3): args = [1, 2].
	d, err := sp.FromAtom(edges, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	sp.Full().ForEach(func(tp Tuple) {
		want := edges.Contains(Tuple{tp[1], tp[2]})
		if d.Contains(tp) != want {
			t.Fatalf("FromAtom E(x2,x3) wrong at %v", tp)
		}
	})

	// Repeated variable: E(x1, x1) selects the loop pattern; no loops here.
	d2, err := sp.FromAtom(edges, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.IsEmpty() {
		t.Fatalf("E(x1,x1) should be empty, got %v", d2)
	}

	loops := SetOf(2, Tuple{2, 2}, Tuple{0, 1})
	d3, err := sp.FromAtom(loops, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	d3.ForEach(func(tp Tuple) {
		if tp[0] != 2 {
			t.Fatalf("E(x1,x1) over loops contains %v", tp)
		}
	})
	if d3.Count() != 9 { // x1=2 fixed, x2 and x3 free
		t.Fatalf("count = %d, want 9", d3.Count())
	}
}

func TestFromAtomErrors(t *testing.T) {
	sp := MustSpace(2, 3)
	edges := SetOf(2, Tuple{0, 5}) // 5 outside domain of size 3
	if _, err := sp.FromAtom(edges, []int{0, 1}); err == nil {
		t.Fatal("out-of-domain tuple accepted")
	}
	ok := SetOf(2, Tuple{0, 1})
	if _, err := sp.FromAtom(ok, []int{0}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := sp.FromAtom(ok, []int{0, 5}); err == nil {
		t.Fatal("variable index outside width accepted")
	}
}

func TestFromAtomZeroAry(t *testing.T) {
	sp := MustSpace(2, 3)
	truth := NewSet(0)
	d, err := sp.FromAtom(truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsEmpty() {
		t.Fatal("false 0-ary atom should denote the empty relation")
	}
	truth.Add(Tuple{})
	d, err = sp.FromAtom(truth, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(sp.Full()) {
		t.Fatal("true 0-ary atom should denote the full relation")
	}
}

func TestProjectAndToSet(t *testing.T) {
	sp := MustSpace(3, 2)
	d := sp.Empty()
	d.Add(Tuple{0, 1, 0})
	d.Add(Tuple{0, 1, 1})
	d.Add(Tuple{1, 0, 0})
	p := d.Project([]int{0, 1})
	want := SetOf(2, Tuple{0, 1}, Tuple{1, 0})
	if !p.Equal(want) {
		t.Fatalf("Project = %v, want %v", p, want)
	}
	back, err := d.ToSet().ToDense(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Fatal("ToSet/ToDense round trip failed")
	}
}

func TestDenseHashChangesWithContent(t *testing.T) {
	sp := MustSpace(2, 3)
	a := sp.Empty()
	b := sp.Empty()
	if a.Hash() != b.Hash() {
		t.Fatal("equal relations hash differently")
	}
	b.Add(Tuple{1, 1})
	if a.Hash() == b.Hash() {
		t.Fatal("different relations hash equal")
	}
}
