package relation

import "testing"

func TestSetApplyDelta(t *testing.T) {
	s := SetOf(2, Tuple{0, 1}, Tuple{1, 2})
	out := s.ApplyDelta([]Tuple{{2, 3}, {3, 3}}, []Tuple{{0, 1}, {5, 5}})
	if s.Len() != 2 || !s.Contains(Tuple{0, 1}) {
		t.Fatalf("receiver mutated: %v", s)
	}
	want := SetOf(2, Tuple{1, 2}, Tuple{2, 3}, Tuple{3, 3})
	if !out.Equal(want) {
		t.Fatalf("ApplyDelta = %v, want %v", out, want)
	}
	// Delete-then-insert of the same tuple keeps it present.
	both := s.ApplyDelta([]Tuple{{0, 1}}, []Tuple{{0, 1}})
	if !both.Contains(Tuple{0, 1}) {
		t.Fatalf("insert did not win over delete of the same tuple")
	}
}

func TestDenseApplyTuples(t *testing.T) {
	sp := MustSpace(2, 4)
	d := sp.Empty()
	d.Add(Tuple{0, 1})
	d.Add(Tuple{1, 2})
	d.ApplyTuples([]Tuple{{2, 3}}, []Tuple{{0, 1}, {3, 3}})
	want := SetOf(2, Tuple{1, 2}, Tuple{2, 3})
	if !d.ToSet().Equal(want) {
		t.Fatalf("ApplyTuples = %v, want %v", d.ToSet(), want)
	}
	d.Release()
}

func TestSparseApplyDelta(t *testing.T) {
	s, err := SparseOf(2, 10, Tuple{0, 1}, Tuple{4, 5}, Tuple{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.ApplyDelta([]Tuple{{2, 2}, {4, 5}}, []Tuple{{9, 9}, {8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	want := SetOf(2, Tuple{0, 1}, Tuple{2, 2}, Tuple{4, 5})
	if !out.ToSet().Equal(want) {
		t.Fatalf("Sparse.ApplyDelta = %v, want %v", out.ToSet(), want)
	}
	if s.Count() != 3 {
		t.Fatalf("receiver mutated: %v", s.ToSet())
	}
	if _, err := s.ApplyDelta([]Tuple{{0, 99}}, nil); err == nil {
		t.Fatalf("out-of-range insert did not error")
	}
}
