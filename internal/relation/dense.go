package relation

import (
	"fmt"

	"repro/internal/bitset"
)

// Dense is a k-ary relation over {0,…,n−1} stored as a bit set over the nᵏ
// points of its Space. It is the working representation of the
// bounded-variable evaluators: every subformula of an Lᵏ query denotes one
// Dense relation over the full variable tuple (x₁,…,x_k).
type Dense struct {
	sp   *Space
	bits *bitset.Set
}

// Empty returns the empty relation of the space.
func (sp *Space) Empty() *Dense {
	return &Dense{sp: sp, bits: bitset.New(sp.size)}
}

// Full returns Dᵏ, the total relation of the space.
func (sp *Space) Full() *Dense {
	return &Dense{sp: sp, bits: bitset.Full(sp.size)}
}

// Diagonal returns the relation { t | t_i = t_j }.
func (sp *Space) Diagonal(i, j int) *Dense {
	sp.checkAxis(i)
	sp.checkAxis(j)
	d := sp.Empty()
	for idx := 0; idx < sp.size; idx++ {
		if sp.Coord(idx, i) == sp.Coord(idx, j) {
			d.bits.Set(idx)
		}
	}
	return d
}

// FromAtom cylindrifies a stored database relation into this space:
// the result contains every point t of Dᵏ such that
// (t_{args[0]}, …, t_{args[m−1]}) ∈ rel, where m is rel's arity.
// Coordinates of t not mentioned in args are unconstrained. This is exactly
// the denotation of an atomic formula R(x_{args[0]+1}, …) under the
// full-width evaluation of Proposition 3.1.
func (sp *Space) FromAtom(rel *Set, args []int) (*Dense, error) {
	if len(args) != rel.Arity() {
		return nil, fmt.Errorf("relation: atom has %d arguments for relation of arity %d", len(args), rel.Arity())
	}
	for _, a := range args {
		if a < 0 || a >= sp.k {
			return nil, fmt.Errorf("relation: atom argument refers to variable %d outside width %d", a, sp.k)
		}
	}
	d := sp.Empty()
	if sp.size == 0 {
		return d, nil
	}
	// Free axes: those not mentioned in args.
	mentioned := make([]bool, sp.k)
	for _, a := range args {
		mentioned[a] = true
	}
	var free []int
	for i := 0; i < sp.k; i++ {
		if !mentioned[i] {
			free = append(free, i)
		}
	}
	point := make(Tuple, sp.k)
	var err error
	rel.ForEach(func(t Tuple) {
		if err != nil {
			return
		}
		// A database tuple is consistent with the argument pattern iff equal
		// argument variables carry equal values; assemble the base point.
		for i := range point {
			point[i] = 0
		}
		seen := make([]int, sp.k)
		for i := range seen {
			seen[i] = -1
		}
		for pos, a := range args {
			v := t[pos]
			if v < 0 || v >= sp.n {
				err = fmt.Errorf("relation: stored tuple %v outside domain of size %d", t, sp.n)
				return
			}
			if seen[a] >= 0 && seen[a] != v {
				return // pattern like R(x,x) and tuple (1,2): contributes nothing
			}
			seen[a] = v
			point[a] = v
		}
		d.setCylinder(point, free, 0)
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// setCylinder sets every point that agrees with base outside the free axes.
func (d *Dense) setCylinder(base Tuple, free []int, fi int) {
	if fi == len(free) {
		d.bits.Set(d.sp.Encode(base))
		return
	}
	axis := free[fi]
	for v := 0; v < d.sp.n; v++ {
		base[axis] = v
		d.setCylinder(base, free, fi+1)
	}
	base[axis] = 0
}

func (sp *Space) checkAxis(i int) {
	if i < 0 || i >= sp.k {
		panic(fmt.Sprintf("relation: axis %d out of range [0,%d)", i, sp.k))
	}
}

// Space returns the relation's space.
func (d *Dense) Space() *Space { return d.sp }

// Contains reports whether the relation contains t.
func (d *Dense) Contains(t Tuple) bool { return d.bits.Test(d.sp.Encode(t)) }

// Add inserts t.
func (d *Dense) Add(t Tuple) { d.bits.Set(d.sp.Encode(t)) }

// Remove deletes t.
func (d *Dense) Remove(t Tuple) { d.bits.Clear(d.sp.Encode(t)) }

// Count returns the number of tuples in the relation.
func (d *Dense) Count() int { return d.bits.Count() }

// IsEmpty reports whether the relation has no tuples.
func (d *Dense) IsEmpty() bool { return d.bits.None() }

// Clone returns a copy.
func (d *Dense) Clone() *Dense { return &Dense{sp: d.sp, bits: d.bits.Clone()} }

// Copy overwrites d with o's contents.
func (d *Dense) Copy(o *Dense) {
	d.mustMatch(o)
	d.bits.Copy(o.bits)
}

func (d *Dense) mustMatch(o *Dense) {
	if !d.sp.SameShape(o.sp) {
		panic(fmt.Sprintf("relation: shape mismatch %d^%d vs %d^%d", d.sp.n, d.sp.k, o.sp.n, o.sp.k))
	}
}

// UnionWith sets d to d ∪ o.
func (d *Dense) UnionWith(o *Dense) {
	d.mustMatch(o)
	d.bits.Or(o.bits)
}

// IntersectWith sets d to d ∩ o.
func (d *Dense) IntersectWith(o *Dense) {
	d.mustMatch(o)
	d.bits.And(o.bits)
}

// DifferenceWith sets d to d \ o.
func (d *Dense) DifferenceWith(o *Dense) {
	d.mustMatch(o)
	d.bits.AndNot(o.bits)
}

// Complement complements d with respect to Dᵏ, in place.
func (d *Dense) Complement() { d.bits.Not() }

// Equal reports whether d and o contain the same tuples.
func (d *Dense) Equal(o *Dense) bool { return d.sp.SameShape(o.sp) && d.bits.Equal(o.bits) }

// SubsetOf reports whether d ⊆ o.
func (d *Dense) SubsetOf(o *Dense) bool {
	d.mustMatch(o)
	return d.bits.SubsetOf(o.bits)
}

// Hash returns a content hash, usable for cycle detection over relation
// sequences (the PFP evaluator's convergence test).
func (d *Dense) Hash() uint64 { return d.bits.Hash() }

// ExistsAxis returns { t | ∃v. t[i←v] ∈ d }: the denotation of ∃x_{i+1} φ
// under full-width evaluation. The result is cylindric in axis i.
func (d *Dense) ExistsAxis(i int) *Dense {
	d.sp.checkAxis(i)
	res := d.sp.Empty()
	if d.sp.size == 0 || d.sp.n == 0 {
		return res
	}
	stride := d.sp.stride[i]
	seen := bitset.New(d.sp.size)
	d.bits.ForEach(func(idx int) {
		base := idx - d.sp.Coord(idx, i)*stride
		if seen.Test(base) {
			return
		}
		seen.Set(base)
		for v := 0; v < d.sp.n; v++ {
			res.bits.Set(base + v*stride)
		}
	})
	return res
}

// ForallAxis returns { t | ∀v. t[i←v] ∈ d }: the denotation of ∀x_{i+1} φ.
// The result is cylindric in axis i.
func (d *Dense) ForallAxis(i int) *Dense {
	// ∀ = ¬∃¬, computed directly to avoid two complements.
	d.sp.checkAxis(i)
	res := d.sp.Empty()
	if d.sp.size == 0 || d.sp.n == 0 {
		return res
	}
	stride := d.sp.stride[i]
	seen := bitset.New(d.sp.size)
	d.bits.ForEach(func(idx int) {
		base := idx - d.sp.Coord(idx, i)*stride
		if seen.Test(base) {
			return
		}
		seen.Set(base)
		all := true
		for v := 0; v < d.sp.n; v++ {
			if !d.bits.Test(base + v*stride) {
				all = false
				break
			}
		}
		if all {
			for v := 0; v < d.sp.n; v++ {
				res.bits.Set(base + v*stride)
			}
		}
	})
	return res
}

// Project returns the sparse set { (t_{cols[0]}, …, t_{cols[m−1]}) | t ∈ d },
// deduplicated. It extracts a query answer from a full-width relation.
func (d *Dense) Project(cols []int) *Set {
	for _, c := range cols {
		d.sp.checkAxis(c)
	}
	out := NewSet(len(cols))
	t := make(Tuple, d.sp.k)
	row := make(Tuple, len(cols))
	d.bits.ForEach(func(idx int) {
		d.sp.Decode(idx, t)
		for i, c := range cols {
			row[i] = t[c]
		}
		out.Add(row.Clone())
	})
	return out
}

// ToSet converts the dense relation to a sparse tuple set of the same arity.
func (d *Dense) ToSet() *Set {
	out := NewSet(d.sp.k)
	t := make(Tuple, d.sp.k)
	d.bits.ForEach(func(idx int) {
		d.sp.Decode(idx, t)
		out.Add(t.Clone())
	})
	return out
}

// ForEach calls fn on every tuple, in index order. The tuple is reused
// between calls; clone it to retain it.
func (d *Dense) ForEach(fn func(Tuple)) {
	t := make(Tuple, d.sp.k)
	d.bits.ForEach(func(idx int) {
		d.sp.Decode(idx, t)
		fn(t)
	})
}

// String renders the relation as a sorted tuple list.
func (d *Dense) String() string { return d.ToSet().String() }
