package relation

import (
	"fmt"

	"repro/internal/bitset"
)

// Dense is a k-ary relation over {0,…,n−1} stored as a bit set over the nᵏ
// points of its Space. It is the working representation of the
// bounded-variable evaluators: every subformula of an Lᵏ query denotes one
// Dense relation over the full variable tuple (x₁,…,x_k).
//
// Dense backing bitmaps are drawn from the Space's scratch pool. A caller
// that is done with an intermediate relation may call Release to recycle the
// bitmap; using a Dense after releasing it panics.
type Dense struct {
	sp   *Space
	bits *bitset.Set
}

// Empty returns the empty relation of the space.
func (sp *Space) Empty() *Dense {
	b := sp.getBits()
	b.ClearAll()
	return &Dense{sp: sp, bits: b}
}

// Full returns Dᵏ, the total relation of the space.
func (sp *Space) Full() *Dense {
	b := sp.getBits()
	b.SetAll()
	return &Dense{sp: sp, bits: b}
}

// Diagonal returns the relation { t | t_i = t_j }. The point set is computed
// once per (i, j) and cached on the space; each call returns a fresh
// (pool-backed) copy that the caller may mutate freely.
func (sp *Space) Diagonal(i, j int) *Dense {
	sp.checkAxis(i)
	sp.checkAxis(j)
	if i == j {
		return sp.Full()
	}
	b := sp.getBits()
	b.Copy(sp.diagonalMask(i, j))
	return &Dense{sp: sp, bits: b}
}

// Release returns the relation's backing bitmap to the space's scratch pool.
// The caller must hold the only reference; any use of d after Release
// panics. Release is optional — unreleased relations are simply collected.
func (d *Dense) Release() {
	if d == nil || d.bits == nil {
		return
	}
	d.sp.putBits(d.bits)
	d.bits = nil
}

// atomAdder sets, for each database tuple consistent with an argument
// pattern, the cylinder of points it denotes. The scratch buffers are shared
// across tuples of one cylindrification.
type atomAdder struct {
	d    *Dense
	args []int
	free []int // axes not mentioned in args, ascending
	seen []int
	base Tuple
}

func newAtomAdder(d *Dense, args []int) *atomAdder {
	sp := d.sp
	mentioned := make([]bool, sp.k)
	for _, a := range args {
		mentioned[a] = true
	}
	var free []int
	for i := 0; i < sp.k; i++ {
		if !mentioned[i] {
			free = append(free, i)
		}
	}
	return &atomAdder{
		d:    d,
		args: args,
		free: free,
		seen: make([]int, sp.k),
		base: make(Tuple, sp.k),
	}
}

// add records tuple t. It reports an error only for components outside the
// domain (possible for stored database tuples).
func (aa *atomAdder) add(t Tuple) error {
	sp := aa.d.sp
	for i := range aa.base {
		aa.base[i] = 0
		aa.seen[i] = -1
	}
	for pos, a := range aa.args {
		v := t[pos]
		if v < 0 || v >= sp.n {
			return fmt.Errorf("relation: stored tuple %v outside domain of size %d", t, sp.n)
		}
		if aa.seen[a] >= 0 && aa.seen[a] != v {
			return nil // pattern like R(x,x) and tuple (1,2): contributes nothing
		}
		aa.seen[a] = v
		aa.base[a] = v
	}
	aa.d.setCylinder(sp.Encode(aa.base), aa.free, 0)
	return nil
}

// FromAtom cylindrifies a stored database relation into this space:
// the result contains every point t of Dᵏ such that
// (t_{args[0]}, …, t_{args[m−1]}) ∈ rel, where m is rel's arity.
// Coordinates of t not mentioned in args are unconstrained. This is exactly
// the denotation of an atomic formula R(x_{args[0]+1}, …) under the
// full-width evaluation of Proposition 3.1.
func (sp *Space) FromAtom(rel *Set, args []int) (*Dense, error) {
	if len(args) != rel.Arity() {
		return nil, fmt.Errorf("relation: atom has %d arguments for relation of arity %d", len(args), rel.Arity())
	}
	for _, a := range args {
		if a < 0 || a >= sp.k {
			return nil, fmt.Errorf("relation: atom argument refers to variable %d outside width %d", a, sp.k)
		}
	}
	d := sp.Empty()
	if sp.size == 0 {
		return d, nil
	}
	aa := newAtomAdder(d, args)
	var err error
	rel.ForEach(func(t Tuple) {
		if err != nil {
			return
		}
		err = aa.add(t)
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// FromDenseAtom is FromAtom for a dense source relation: the result contains
// every point t of Dᵏ with (t_{args[0]}, …, t_{args[m−1]}) ∈ src, where m is
// src's arity. It is how a dense fixpoint stage is re-interpreted as an
// atomic subformula without materializing a sparse tuple set.
func (sp *Space) FromDenseAtom(src *Dense, args []int) (*Dense, error) {
	if len(args) != src.sp.k {
		return nil, fmt.Errorf("relation: atom has %d arguments for relation of arity %d", len(args), src.sp.k)
	}
	if src.sp.n != sp.n {
		return nil, fmt.Errorf("relation: domain mismatch %d vs %d", src.sp.n, sp.n)
	}
	for _, a := range args {
		if a < 0 || a >= sp.k {
			return nil, fmt.Errorf("relation: atom argument refers to variable %d outside width %d", a, sp.k)
		}
	}
	d := sp.Empty()
	if sp.size == 0 {
		return d, nil
	}
	aa := newAtomAdder(d, args)
	var err error
	src.ForEach(func(t Tuple) {
		if err != nil {
			return
		}
		err = aa.add(t)
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// setCylinder sets every point that agrees with the point at idx outside the
// free axes (free is ascending). A trailing stride-1 axis is set as one
// contiguous word-parallel range.
func (d *Dense) setCylinder(idx int, free []int, fi int) {
	if fi == len(free) {
		d.bits.Set(idx)
		return
	}
	axis := free[fi]
	if fi == len(free)-1 && d.sp.stride[axis] == 1 {
		d.bits.SetRange(idx, d.sp.n)
		return
	}
	s := d.sp.stride[axis]
	for v := 0; v < d.sp.n; v++ {
		d.setCylinder(idx+v*s, free, fi+1)
	}
}

func (sp *Space) checkAxis(i int) {
	if i < 0 || i >= sp.k {
		panic(fmt.Sprintf("relation: axis %d out of range [0,%d)", i, sp.k))
	}
}

// Space returns the relation's space.
func (d *Dense) Space() *Space { return d.sp }

// Contains reports whether the relation contains t.
func (d *Dense) Contains(t Tuple) bool { return d.bits.Test(d.sp.Encode(t)) }

// Add inserts t.
func (d *Dense) Add(t Tuple) { d.bits.Set(d.sp.Encode(t)) }

// AddIndex inserts the tuple with the given space index.
func (d *Dense) AddIndex(idx int) { d.bits.Set(idx) }

// ForEachIndex calls fn with the space index of every tuple, ascending.
func (d *Dense) ForEachIndex(fn func(int)) { d.bits.ForEach(fn) }

// Remove deletes t.
func (d *Dense) Remove(t Tuple) { d.bits.Clear(d.sp.Encode(t)) }

// Count returns the number of tuples in the relation.
func (d *Dense) Count() int { return d.bits.Count() }

// IsEmpty reports whether the relation has no tuples.
func (d *Dense) IsEmpty() bool { return d.bits.None() }

// Clone returns a copy (pool-backed, like all Dense relations).
func (d *Dense) Clone() *Dense {
	b := d.sp.getBits()
	b.Copy(d.bits)
	return &Dense{sp: d.sp, bits: b}
}

// Copy overwrites d with o's contents.
func (d *Dense) Copy(o *Dense) {
	d.mustMatch(o)
	d.bits.Copy(o.bits)
}

func (d *Dense) mustMatch(o *Dense) {
	if !d.sp.SameShape(o.sp) {
		panic(fmt.Sprintf("relation: shape mismatch %d^%d vs %d^%d", d.sp.n, d.sp.k, o.sp.n, o.sp.k))
	}
}

// UnionWith sets d to d ∪ o.
func (d *Dense) UnionWith(o *Dense) {
	d.mustMatch(o)
	d.bits.Or(o.bits)
}

// IntersectWith sets d to d ∩ o.
func (d *Dense) IntersectWith(o *Dense) {
	d.mustMatch(o)
	d.bits.And(o.bits)
}

// DifferenceWith sets d to d \ o.
func (d *Dense) DifferenceWith(o *Dense) {
	d.mustMatch(o)
	d.bits.AndNot(o.bits)
}

// Complement complements d with respect to Dᵏ, in place.
func (d *Dense) Complement() { d.bits.Not() }

// ImpliesWith sets d to (¬d) ∪ o — the denotation of d → o — in one fused
// pass instead of Complement followed by UnionWith.
func (d *Dense) ImpliesWith(o *Dense) {
	d.mustMatch(o)
	d.bits.OrNot(o.bits)
}

// IffWith sets d to ¬(d ⊕ o) — the denotation of d ↔ o — as a fused
// symmetric-difference-and-complement pass.
func (d *Dense) IffWith(o *Dense) {
	d.mustMatch(o)
	d.bits.Xor(o.bits)
	d.bits.Not()
}

// Equal reports whether d and o contain the same tuples.
func (d *Dense) Equal(o *Dense) bool { return d.sp.SameShape(o.sp) && d.bits.Equal(o.bits) }

// SubsetOf reports whether d ⊆ o.
func (d *Dense) SubsetOf(o *Dense) bool {
	d.mustMatch(o)
	return d.bits.SubsetOf(o.bits)
}

// Hash returns a content hash, usable for cycle detection over relation
// sequences (the PFP evaluator's convergence test).
func (d *Dense) Hash() uint64 { return d.bits.Hash() }

// ExistsAxis returns { t | ∃v. t[i←v] ∈ d }: the denotation of ∃x_{i+1} φ
// under full-width evaluation. The result is cylindric in axis i.
//
// The index space factors along axis i into blocks of stride·n contiguous
// indices, each made of n slabs of stride indices (one per axis value), so
// the quantifier is a word-parallel fold of the n slabs followed by a
// broadcast of the folded slab back over the block — no individual bits are
// touched. ExistsAxisRef is the bit-level reference oracle.
func (d *Dense) ExistsAxis(i int) *Dense {
	d.sp.checkAxis(i)
	res := d.sp.Empty()
	if d.sp.size == 0 || d.sp.n == 0 || d.bits.None() {
		return res
	}
	d.sp.existsAxisInto(res.bits, d.bits, i)
	return res
}

// ForallAxis returns { t | ∀v. t[i←v] ∈ d }: the denotation of ∀x_{i+1} φ.
// The result is cylindric in axis i. See ExistsAxis for the kernel shape;
// ForallAxisRef is the bit-level reference oracle.
func (d *Dense) ForallAxis(i int) *Dense {
	d.sp.checkAxis(i)
	res := d.sp.Empty()
	if d.sp.size == 0 || d.sp.n == 0 || d.bits.None() {
		return res // n ≥ 1, so ∀ fails everywhere on an empty relation
	}
	d.sp.forallAxisInto(res.bits, d.bits, i)
	return res
}

// existsAxisInto computes the ∃-fold of src along axis i into dst, which
// must be cleared. For slabs of ≥ 64 bits the fold runs block-local over
// word ranges; narrower slabs use the masked-word path: a log-shift doubling
// fold over the whole bitmap, a slab-template mask, and a doubling
// broadcast — O(log n) full-width passes, every step still 64 bits wide.
func (sp *Space) existsAxisInto(dst, src *bitset.Set, i int) {
	n, s, size := sp.n, sp.stride[i], sp.size
	if n == 1 {
		dst.Copy(src)
		return
	}
	if s*n <= 64 {
		sp.axisFoldRegister(dst, src, i, false)
		return
	}
	if s >= 64 {
		block := s * n
		for b := 0; b+block <= size; b += block {
			dst.OrFoldStride(src, b, b, s, s, n)
			dst.OrBroadcastStride(dst, b+s, b, s, s, n-1)
		}
		return
	}
	// Fold by window doubling: after the m-th step acc[p] = OR of the m
	// slabs src[p+j·s], j < m (a forward self-overlapping shift, exact
	// because rangeOp ahead-reads see pre-pass contents). The remainder step
	// overlap-ORs window [n−m, n), which is idempotent for ∨.
	acc := sp.getBits()
	acc.Copy(src)
	m := 1
	for m*2 <= n {
		acc.OrRange(acc, 0, m*s, size-m*s)
		m *= 2
	}
	if m < n {
		acc.OrRange(acc, 0, (n-m)*s, size-(n-m)*s)
	}
	acc.And(sp.slabTemplate(i))
	sp.orBroadcastDoubling(dst, acc, s)
	sp.putBits(acc)
}

// forallAxisInto is existsAxisInto with an ∀-fold (intersection); the
// overlap remainder is idempotent for ∧ as well.
func (sp *Space) forallAxisInto(dst, src *bitset.Set, i int) {
	n, s, size := sp.n, sp.stride[i], sp.size
	if n == 1 {
		dst.Copy(src)
		return
	}
	if s*n <= 64 {
		sp.axisFoldRegister(dst, src, i, true)
		return
	}
	if s >= 64 {
		block := s * n
		for b := 0; b+block <= size; b += block {
			dst.CopyRange(src, b, b, s)
			dst.AndFoldStride(src, b, b+s, s, s, n-1)
			dst.OrBroadcastStride(dst, b+s, b, s, s, n-1)
		}
		return
	}
	acc := sp.getBits()
	acc.Copy(src)
	m := 1
	for m*2 <= n {
		acc.AndRange(acc, 0, m*s, size-m*s)
		m *= 2
	}
	if m < n {
		acc.AndRange(acc, 0, (n-m)*s, size-(n-m)*s)
	}
	acc.And(sp.slabTemplate(i))
	sp.orBroadcastDoubling(dst, acc, s)
	sp.putBits(acc)
}

// axisFoldRegister quantifies axis i when a whole block (s·n bits) fits in
// one 64-bit register: fetch the block, fold the n slabs with in-register
// shift doubling, mask the folded slab, broadcast it back with shift
// doubling, and store — a handful of register ops per block, no bitmap-wide
// passes at all. This is the common case for the innermost axis (stride 1)
// of small-domain spaces.
func (sp *Space) axisFoldRegister(dst, src *bitset.Set, i int, forall bool) {
	n, s, size := sp.n, sp.stride[i], sp.size
	block := s * n
	// When several blocks tile one word, fold them all in the same register:
	// shifts do carry bits across block boundaries, but the folded slab of
	// each block only ever reads offsets inside its own block (the doubling
	// windows never exceed n−1 slabs), so the leakage lands outside every
	// position that survives the template mask.
	window := block
	if 64%block == 0 {
		window = 64
	}
	sMask := ^uint64(0) >> uint(64-s)
	tmplMask := uint64(0)
	for off := 0; off+block <= window; off += block {
		tmplMask |= sMask << uint(off)
	}
	for b := 0; b < size; b += window {
		length := window
		if b+length > size {
			length = size - b // a multiple of block: blocks tile the space
		}
		lenMask := ^uint64(0) >> uint(64-length)
		w := src.Fetch64(b)
		if forall {
			// Out-of-range bits must be neutral (1) for the ∧-fold.
			w |= ^lenMask
		} else {
			w &= lenMask
		}
		m := 1
		for m*2 <= n {
			if forall {
				w &= w >> uint(m*s)
			} else {
				w |= w >> uint(m*s)
			}
			m *= 2
		}
		if m < n {
			if forall {
				w &= w >> uint((n-m)*s)
			} else {
				w |= w >> uint((n-m)*s)
			}
		}
		w &= tmplMask
		for cov := 1; cov < n; {
			t := cov
			if t > n-cov {
				t = n - cov
			}
			w |= w << uint(t*s)
			cov += t
		}
		dst.StoreRange(b, length, w)
	}
}

// orBroadcastDoubling writes into dst the union of acc shifted up by v·s for
// v in [0, n): the cylindrification step of the masked-word quantifier path,
// where acc holds one folded slab per block (slab-template positions only).
// The backward shift cannot run in place — ascending words would chain — so
// each doubling step goes through a scratch snapshot.
func (sp *Space) orBroadcastDoubling(dst, acc *bitset.Set, s int) {
	n, size := sp.n, sp.size
	dst.Copy(acc)
	tmp := sp.getBits()
	for cov := 1; cov < n; {
		t := cov
		if t > n-cov {
			t = n - cov
		}
		tmp.Copy(dst)
		dst.OrRange(tmp, t*s, 0, size-t*s)
		cov += t
	}
	sp.putBits(tmp)
}

// ExistsAxisRef is the bit-level reference implementation of ExistsAxis,
// kept as the correctness oracle for the word-parallel kernel.
func (d *Dense) ExistsAxisRef(i int) *Dense {
	d.sp.checkAxis(i)
	res := d.sp.Empty()
	if d.sp.size == 0 || d.sp.n == 0 || d.bits.None() {
		return res
	}
	stride := d.sp.stride[i]
	seen := d.sp.getBits()
	seen.ClearAll()
	d.bits.ForEach(func(idx int) {
		base := idx - d.sp.Coord(idx, i)*stride
		if seen.Test(base) {
			return
		}
		seen.Set(base)
		for v := 0; v < d.sp.n; v++ {
			res.bits.Set(base + v*stride)
		}
	})
	d.sp.putBits(seen)
	return res
}

// ForallAxisRef is the bit-level reference implementation of ForallAxis,
// kept as the correctness oracle for the word-parallel kernel.
func (d *Dense) ForallAxisRef(i int) *Dense {
	d.sp.checkAxis(i)
	res := d.sp.Empty()
	if d.sp.size == 0 || d.sp.n == 0 || d.bits.None() {
		return res
	}
	stride := d.sp.stride[i]
	seen := d.sp.getBits()
	seen.ClearAll()
	d.bits.ForEach(func(idx int) {
		base := idx - d.sp.Coord(idx, i)*stride
		if seen.Test(base) {
			return
		}
		seen.Set(base)
		all := true
		for v := 0; v < d.sp.n; v++ {
			if !d.bits.Test(base + v*stride) {
				all = false
				break
			}
		}
		if all {
			for v := 0; v < d.sp.n; v++ {
				res.bits.Set(base + v*stride)
			}
		}
	})
	d.sp.putBits(seen)
	return res
}

// ProjectAt computes, over the target space esp (arity len(cols), same
// domain), the dense relation
//
//	{ t | the point with coordinates cols←t, pinned←pinnedVals,
//	      and the remaining axes existentially quantified, is in d }.
//
// With no pinned axes this is dense projection (the fixpoint-stage
// extraction of the bottom-up evaluators); pinning fixes parameter axes to
// one assignment, as the per-assignment PFP sweep requires. cols and pinned
// must be disjoint lists of distinct axes.
func (d *Dense) ProjectAt(esp *Space, cols []int, pinned []int, pinnedVals []int) *Dense {
	sp := d.sp
	if len(cols) != esp.k || esp.n != sp.n {
		panic(fmt.Sprintf("relation: projecting %d axes into space %d^%d (source %d^%d)",
			len(cols), esp.n, esp.k, sp.n, sp.k))
	}
	if len(pinned) != len(pinnedVals) {
		panic(fmt.Sprintf("relation: %d pinned axes with %d values", len(pinned), len(pinnedVals)))
	}
	kept := make([]bool, sp.k)
	for _, c := range cols {
		sp.checkAxis(c)
		if kept[c] {
			panic(fmt.Sprintf("relation: duplicate projection axis %d", c))
		}
		kept[c] = true
	}
	base := 0
	for j, p := range pinned {
		sp.checkAxis(p)
		if kept[p] {
			panic(fmt.Sprintf("relation: axis %d both projected and pinned", p))
		}
		kept[p] = true
		base += pinnedVals[j] * sp.stride[p]
	}

	out := esp.Empty()
	if esp.size == 0 || sp.size == 0 {
		return out
	}

	// Sparse path: when the source holds few tuples (a semi-naive stage
	// delta, typically), one pass over its set bits beats materializing an
	// ExistsAxis intermediate per dropped axis. The threshold mirrors
	// ExistsAxisSparse: the bit-walk costs ~cnt coordinate extractions per
	// axis against one full-bitmap pass per fold.
	if cnt := d.bits.Count(); cnt*sp.n*8 < sp.size {
		d.bits.ForEach(func(idx int) {
			for j, p := range pinned {
				if sp.Coord(idx, p) != pinnedVals[j] {
					return
				}
			}
			outIdx := 0
			for j, c := range cols {
				outIdx += sp.Coord(idx, c) * esp.stride[j]
			}
			out.bits.Set(outIdx)
		})
		return out
	}

	// Quantify away the dropped axes, then gather the kept coordinates.
	tmp, owned := d, false
	for a := 0; a < sp.k; a++ {
		if kept[a] {
			continue
		}
		next := tmp.ExistsAxis(a)
		if owned {
			tmp.Release()
		}
		tmp, owned = next, true
	}

	m := len(cols)
	if m == 0 {
		if tmp.bits.Test(base) {
			out.bits.Set(0)
		}
		if owned {
			tmp.Release()
		}
		return out
	}

	n := sp.n
	strides := make([]int, m)
	for j, c := range cols {
		strides[j] = sp.stride[c]
	}
	if strides[m-1] == 1 {
		// The innermost projected axis is the source's innermost axis: each
		// output row of n bits is one contiguous source range.
		digits := make([]int, m-1)
		srcIdx, outIdx := base, 0
		for {
			out.bits.CopyRange(tmp.bits, outIdx, srcIdx, n)
			outIdx += n
			j := m - 2
			for ; j >= 0; j-- {
				digits[j]++
				srcIdx += strides[j]
				if digits[j] < n {
					break
				}
				digits[j] = 0
				srcIdx -= n * strides[j]
			}
			if j < 0 {
				break
			}
		}
	} else {
		digits := make([]int, m)
		srcIdx, outIdx := base, 0
		for {
			if tmp.bits.Test(srcIdx) {
				out.bits.Set(outIdx)
			}
			outIdx++
			j := m - 1
			for ; j >= 0; j-- {
				digits[j]++
				srcIdx += strides[j]
				if digits[j] < n {
					break
				}
				digits[j] = 0
				srcIdx -= n * strides[j]
			}
			if j < 0 {
				break
			}
		}
	}
	if owned {
		tmp.Release()
	}
	return out
}

// Project returns the sparse set { (t_{cols[0]}, …, t_{cols[m−1]}) | t ∈ d },
// deduplicated. It extracts a query answer from a full-width relation.
//
// When the axes are distinct it dedups densely first — fold the dropped
// axes word-parallel (ProjectAt), then decode only the nᵐ-point result —
// instead of decoding every one of up to nᵏ set bits into a hash set. For
// a low-arity head over a well-populated relation (the typical fixpoint
// answer) this turns answer extraction from the dominant cost of a run
// into noise.
func (d *Dense) Project(cols []int) *Set {
	for _, c := range cols {
		d.sp.checkAxis(c)
	}
	if distinct := func() bool {
		seen := make([]bool, d.sp.k)
		for _, c := range cols {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}(); distinct {
		if esp, err := NewSpace(len(cols), d.sp.n); err == nil {
			p := d.ProjectAt(esp, cols, nil, nil)
			out := p.ToSet()
			p.Release()
			return out
		}
	}
	out := NewSet(len(cols))
	t := make(Tuple, d.sp.k)
	row := make(Tuple, len(cols))
	d.bits.ForEach(func(idx int) {
		d.sp.Decode(idx, t)
		for i, c := range cols {
			row[i] = t[c]
		}
		out.Add(row.Clone())
	})
	return out
}

// ToSet converts the dense relation to a sparse tuple set of the same arity.
func (d *Dense) ToSet() *Set {
	out := NewSet(d.sp.k)
	t := make(Tuple, d.sp.k)
	d.bits.ForEach(func(idx int) {
		d.sp.Decode(idx, t)
		out.Add(t.Clone())
	})
	return out
}

// ForEach calls fn on every tuple, in index order. The tuple is reused
// between calls; clone it to retain it.
func (d *Dense) ForEach(fn func(Tuple)) {
	t := make(Tuple, d.sp.k)
	d.bits.ForEach(func(idx int) {
		d.sp.Decode(idx, t)
		fn(t)
	})
}

// String renders the relation as a sorted tuple list.
func (d *Dense) String() string { return d.ToSet().String() }
