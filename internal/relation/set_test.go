package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetAddContains(t *testing.T) {
	s := NewSet(2)
	s.Add(Tuple{1, 2})
	s.Add(Tuple{1, 2}) // duplicate
	s.Add(Tuple{3, 4})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(Tuple{1, 2}) || s.Contains(Tuple{2, 1}) {
		t.Fatal("membership wrong")
	}
	if s.Contains(Tuple{1}) {
		t.Fatal("wrong-arity membership should be false")
	}
	s.Remove(Tuple{1, 2})
	if s.Contains(Tuple{1, 2}) || s.Len() != 1 {
		t.Fatal("Remove failed")
	}
}

func TestSetAddAliasing(t *testing.T) {
	s := NewSet(2)
	tp := Tuple{1, 2}
	s.Add(tp)
	tp[0] = 9
	if !s.Contains(Tuple{1, 2}) {
		t.Fatal("Add did not copy the tuple")
	}
}

func TestSetArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch on Add did not panic")
		}
	}()
	NewSet(2).Add(Tuple{1})
}

func TestZeroArySet(t *testing.T) {
	s := NewSet(0)
	if s.Contains(Tuple{}) {
		t.Fatal("empty 0-ary set contains ()")
	}
	s.Add(Tuple{})
	if !s.Contains(Tuple{}) || s.Len() != 1 {
		t.Fatal("0-ary set broken")
	}
}

func TestSetTheoreticOps(t *testing.T) {
	a := SetOf(1, Tuple{1}, Tuple{2}, Tuple{3})
	b := SetOf(1, Tuple{2}, Tuple{3}, Tuple{4})
	if got := a.Union(b); got.Len() != 4 {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(SetOf(1, Tuple{2}, Tuple{3})) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Difference(b); !got.Equal(SetOf(1, Tuple{1})) {
		t.Fatalf("Difference = %v", got)
	}
	if !a.Intersect(b).SubsetOf(a) {
		t.Fatal("intersection not a subset")
	}
}

func TestProjectProductSelect(t *testing.T) {
	s := SetOf(2, Tuple{1, 2}, Tuple{3, 2}, Tuple{1, 4})
	if got := s.Project([]int{1}); !got.Equal(SetOf(1, Tuple{2}, Tuple{4})) {
		t.Fatalf("Project = %v", got)
	}
	// Project can duplicate and reorder columns.
	if got := s.Project([]int{1, 0, 1}); got.Len() != 3 || !got.Contains(Tuple{2, 1, 2}) {
		t.Fatalf("Project with reorder = %v", got)
	}
	u := SetOf(1, Tuple{7}, Tuple{8})
	p := s.Product(u)
	if p.Len() != 6 || p.Arity() != 3 || !p.Contains(Tuple{1, 2, 7}) {
		t.Fatalf("Product = %v", p)
	}
	sel := SetOf(2, Tuple{1, 1}, Tuple{1, 2}).SelectEq(0, 1)
	if !sel.Equal(SetOf(2, Tuple{1, 1})) {
		t.Fatalf("SelectEq = %v", sel)
	}
	sc := s.SelectConst(0, 1)
	if !sc.Equal(SetOf(2, Tuple{1, 2}, Tuple{1, 4})) {
		t.Fatalf("SelectConst = %v", sc)
	}
}

func TestJoin(t *testing.T) {
	emp := SetOf(2, Tuple{10, 1}, Tuple{11, 1}, Tuple{12, 2}) // (emp, dept)
	mgr := SetOf(2, Tuple{1, 20}, Tuple{2, 21})               // (dept, mgr)
	j := emp.Join(mgr, []JoinOn{{Left: 1, Right: 0}})
	if j.Arity() != 4 || j.Len() != 3 {
		t.Fatalf("Join = %v", j)
	}
	if !j.Contains(Tuple{10, 1, 1, 20}) || !j.Contains(Tuple{12, 2, 2, 21}) {
		t.Fatalf("Join missing rows: %v", j)
	}
}

func TestJoinMultiCondition(t *testing.T) {
	a := SetOf(2, Tuple{1, 2}, Tuple{3, 4})
	b := SetOf(2, Tuple{1, 2}, Tuple{3, 9})
	j := a.Join(b, []JoinOn{{0, 0}, {1, 1}})
	if j.Len() != 1 || !j.Contains(Tuple{1, 2, 1, 2}) {
		t.Fatalf("multi-condition Join = %v", j)
	}
}

func TestSemijoin(t *testing.T) {
	emp := SetOf(2, Tuple{10, 1}, Tuple{11, 1}, Tuple{12, 2})
	mgr := SetOf(2, Tuple{1, 20})
	sj := emp.Semijoin(mgr, []JoinOn{{Left: 1, Right: 0}})
	if !sj.Equal(SetOf(2, Tuple{10, 1}, Tuple{11, 1})) {
		t.Fatalf("Semijoin = %v", sj)
	}
}

func TestQuickJoinAgreesWithProductSelect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewSet(2)
		b := NewSet(2)
		for i := 0; i < 12; i++ {
			a.Add(Tuple{r.Intn(4), r.Intn(4)})
			b.Add(Tuple{r.Intn(4), r.Intn(4)})
		}
		on := []JoinOn{{Left: 1, Right: 0}}
		viaJoin := a.Join(b, on)
		viaProduct := a.Product(b).SelectEq(1, 2)
		return viaJoin.Equal(viaProduct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSemijoinIsJoinProjection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewSet(2)
		b := NewSet(1)
		for i := 0; i < 10; i++ {
			a.Add(Tuple{r.Intn(4), r.Intn(4)})
			b.Add(Tuple{r.Intn(4)})
		}
		on := []JoinOn{{Left: 0, Right: 0}}
		return a.Semijoin(b, on).Equal(a.Join(b, on).Project([]int{0, 1}))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTuplesSorted(t *testing.T) {
	s := SetOf(2, Tuple{2, 0}, Tuple{0, 1}, Tuple{0, 0})
	ts := s.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) >= 0 {
			t.Fatalf("Tuples not sorted: %v", ts)
		}
	}
	if s.String() != "{(0, 0), (0, 1), (2, 0)}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestMaxElement(t *testing.T) {
	if NewSet(2).MaxElement() != -1 {
		t.Fatal("empty set MaxElement should be -1")
	}
	if SetOf(2, Tuple{3, 9}, Tuple{1, 2}).MaxElement() != 9 {
		t.Fatal("MaxElement wrong")
	}
}

func TestToDenseErrors(t *testing.T) {
	sp := MustSpace(2, 3)
	if _, err := SetOf(1, Tuple{0}).ToDense(sp); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := SetOf(2, Tuple{0, 3}).ToDense(sp); err == nil {
		t.Fatal("out-of-domain tuple accepted")
	}
}
