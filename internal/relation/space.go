package relation

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
)

// MaxDenseBits bounds the size of a single dense relation. A Space whose nᵏ
// exceeds this limit is rejected at construction time, so the evaluators fail
// fast with a typed error instead of attempting a pathological allocation.
const MaxDenseBits = 1 << 30

// Space is a validated (arity, domain-size) shape for dense relations.
// All Dense relations of one Space share its tuple codec: a tuple
// (t₀, …, t_{k−1}) is encoded as Σ tᵢ·n^{k−1−i} (row-major, first coordinate
// most significant).
type Space struct {
	k      int
	n      int
	size   int
	stride []int

	// pool recycles nᵏ-bit backing sets for the Dense relations of this
	// space, so that evaluators iterating thousands of subformula visits do
	// not allocate a fresh bitmap per visit. Sets in the pool hold arbitrary
	// stale contents; every consumer clears, fills or overwrites.
	pool sync.Pool

	// outstanding counts bitmaps handed out by getBits and not yet returned
	// by putBits: the space's live scratch balance. Release is optional for
	// long-lived values (they are simply collected), so the absolute number
	// is not a leak count; what the leak tests pin is that error and
	// cancellation paths leave the balance exactly where success paths do.
	outstanding int64

	// mu guards the lazily built per-space caches below. A Space may be
	// shared by concurrent evaluation workers (the parallel PFP sweep).
	mu sync.Mutex
	// diag caches the bitmap of each Diagonal(i, j) so repeated equality
	// subformulas inside fixpoint bodies cost a word-copy, not a decode of
	// every point.
	diag map[[2]int]*bitset.Set
	// tmpl caches, per axis, the slab-template mask { p | p mod (stride·n)
	// < stride }: the positions holding the folded slab of each block in the
	// masked-word quantifier path.
	tmpl []*bitset.Set
}

// NewSpace returns the space of k-ary relations over a domain of n elements.
// It fails if k or n is negative, or if nᵏ exceeds MaxDenseBits.
func NewSpace(k, n int) (*Space, error) {
	if k < 0 {
		return nil, fmt.Errorf("relation: negative arity %d", k)
	}
	if n < 0 {
		return nil, fmt.Errorf("relation: negative domain size %d", n)
	}
	size := 1
	for i := 0; i < k; i++ {
		if n == 0 {
			size = 0
			break
		}
		if size > MaxDenseBits/n {
			return nil, fmt.Errorf("relation: dense space %d^%d exceeds %d bits", n, k, MaxDenseBits)
		}
		size *= n
	}
	sp := &Space{k: k, n: n, size: size, stride: make([]int, k)}
	s := 1
	for i := k - 1; i >= 0; i-- {
		sp.stride[i] = s
		if n > 0 {
			s *= n
		}
	}
	return sp, nil
}

// MustSpace is NewSpace for callers with statically valid shapes; it panics
// on error.
func MustSpace(k, n int) *Space {
	sp, err := NewSpace(k, n)
	if err != nil {
		panic(err)
	}
	return sp
}

// Arity returns k.
func (sp *Space) Arity() int { return sp.k }

// Domain returns n, the number of domain elements.
func (sp *Space) Domain() int { return sp.n }

// Size returns nᵏ, the number of points in the space.
func (sp *Space) Size() int { return sp.size }

// Stride returns the index stride of coordinate axis i.
func (sp *Space) Stride(i int) int { return sp.stride[i] }

// Encode maps a tuple to its index. It panics if the tuple has the wrong
// length or a component outside the domain (programmer error).
func (sp *Space) Encode(t Tuple) int {
	if len(t) != sp.k {
		panic(fmt.Sprintf("relation: encoding %d-tuple in space of arity %d", len(t), sp.k))
	}
	idx := 0
	for i, v := range t {
		if v < 0 || v >= sp.n {
			panic(fmt.Sprintf("relation: component %d out of domain [0,%d)", v, sp.n))
		}
		idx += v * sp.stride[i]
	}
	return idx
}

// Decode writes the tuple with index idx into dst (which must have length k)
// and returns it. If dst is nil a new tuple is allocated.
func (sp *Space) Decode(idx int, dst Tuple) Tuple {
	if idx < 0 || idx >= sp.size {
		panic(fmt.Sprintf("relation: index %d out of space of size %d", idx, sp.size))
	}
	if dst == nil {
		dst = make(Tuple, sp.k)
	}
	if len(dst) != sp.k {
		panic(fmt.Sprintf("relation: decode destination has length %d, want %d", len(dst), sp.k))
	}
	for i := 0; i < sp.k; i++ {
		dst[i] = (idx / sp.stride[i]) % sp.n
	}
	return dst
}

// Coord returns coordinate i of the point with index idx without decoding the
// whole tuple.
func (sp *Space) Coord(idx, i int) int {
	return (idx / sp.stride[i]) % sp.n
}

// SameShape reports whether two spaces have identical arity and domain.
func (sp *Space) SameShape(other *Space) bool {
	return sp.k == other.k && sp.n == other.n
}

// getBits returns an nᵏ-bit set with arbitrary contents, recycled from the
// space's scratch pool when possible.
func (sp *Space) getBits() *bitset.Set {
	atomic.AddInt64(&sp.outstanding, 1)
	if v := sp.pool.Get(); v != nil {
		return v.(*bitset.Set)
	}
	return bitset.New(sp.size)
}

// putBits returns a set obtained from getBits to the pool. The caller must
// not retain any reference to it.
func (sp *Space) putBits(b *bitset.Set) {
	if b != nil {
		atomic.AddInt64(&sp.outstanding, -1)
		sp.pool.Put(b)
	}
}

// ScratchOutstanding returns the current scratch balance: getBits calls minus
// putBits calls. Tests compare balances across error and cancellation paths
// to pin the Release discipline of conversion nodes and fixpoint loops.
func (sp *Space) ScratchOutstanding() int64 {
	return atomic.LoadInt64(&sp.outstanding)
}

// diagonalMask returns the cached bitmap of { t | t_i = t_j }, building it on
// first use. The returned set is shared and must not be mutated.
func (sp *Space) diagonalMask(i, j int) *bitset.Set {
	key := [2]int{i, j}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.diag == nil {
		sp.diag = make(map[[2]int]*bitset.Set)
	}
	if m, ok := sp.diag[key]; ok {
		return m
	}
	m := bitset.New(sp.size)
	for idx := 0; idx < sp.size; idx++ {
		if sp.Coord(idx, i) == sp.Coord(idx, j) {
			m.Set(idx)
		}
	}
	sp.diag[key] = m
	return m
}

// slabTemplate returns the cached mask of slab positions for axis i: the
// bits p with p mod (stride·n) < stride. The returned set is shared and must
// not be mutated.
func (sp *Space) slabTemplate(i int) *bitset.Set {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.tmpl == nil {
		sp.tmpl = make([]*bitset.Set, sp.k)
	}
	if sp.tmpl[i] != nil {
		return sp.tmpl[i]
	}
	m := bitset.New(sp.size)
	s := sp.stride[i]
	block := s * sp.n
	for b := 0; b+s <= sp.size; b += block {
		m.SetRange(b, s)
	}
	sp.tmpl[i] = m
	return m
}
