// Package relation implements k-ary relations over a finite domain
// {0, …, n−1}, in two representations:
//
//   - Dense: a bit set over the nᵏ points of Dᵏ, addressed through a Space
//     (a validated (k, n) shape with a mixed-radix tuple codec). Dense
//     relations are the intermediate results of bounded-variable query
//     evaluation: every logical connective maps to a word-parallel bit
//     operation, and existential quantification to an OR-fold along one
//     coordinate axis.
//
//   - Set: a sparse tuple set of arbitrary arity, used for database storage,
//     query answers, and the classical relational-algebra operations
//     (projection, product, selection, equijoin, semijoin).
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a point of Dᵏ: a sequence of domain elements.
type Tuple []int

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether t and u have the same length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples first by length, then lexicographically.
func (t Tuple) Compare(u Tuple) int {
	if len(t) != len(u) {
		if len(t) < len(u) {
			return -1
		}
		return 1
	}
	for i := range t {
		switch {
		case t[i] < u[i]:
			return -1
		case t[i] > u[i]:
			return 1
		}
	}
	return 0
}

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// SortTuples sorts ts in place into the canonical Compare order.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
