package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Arrival process kinds for the closed-loop load harness (bvqload). A
// closed process has no arrival clock at all — each worker fires its next
// request the moment the previous one completes, so offered load adapts to
// the system (the classic closed-loop benchmark). Open and Poisson
// processes launch requests on a clock regardless of completions: open at
// a fixed rate, Poisson with exponentially distributed gaps of the same
// mean — the memoryless process that real independent clients approximate,
// and the one that exposes queueing behavior fixed-rate load hides.
const (
	ArrivalClosed  = "closed"
	ArrivalOpen    = "open"
	ArrivalPoisson = "poisson"
)

// Arrivals generates inter-arrival gaps for one load run. Deterministic
// per seed. Safe for concurrent use (a single dispatcher is the expected
// caller, but nothing breaks otherwise).
type Arrivals struct {
	kind string
	mean time.Duration // 1/rate
	mu   sync.Mutex
	rng  *rand.Rand
}

// NewArrivals builds an arrival process. rate is requests/second and must
// be positive for open and poisson; it is ignored for closed.
func NewArrivals(kind string, rate float64, seed uint64) (*Arrivals, error) {
	switch kind {
	case ArrivalClosed:
		return &Arrivals{kind: kind}, nil
	case ArrivalOpen, ArrivalPoisson:
		if rate <= 0 {
			return nil, fmt.Errorf("workload: %s arrivals need a positive rate, got %v", kind, rate)
		}
		return &Arrivals{
			kind: kind,
			mean: time.Duration(float64(time.Second) / rate),
			rng:  rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		}, nil
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (want closed, open or poisson)", kind)
	}
}

// Kind returns the process name.
func (a *Arrivals) Kind() string { return a.kind }

// Closed reports whether the process is completion-driven (no clock).
func (a *Arrivals) Closed() bool { return a.kind == ArrivalClosed }

// Next returns the gap before the next launch. Zero for closed processes.
func (a *Arrivals) Next() time.Duration {
	switch a.kind {
	case ArrivalOpen:
		return a.mean
	case ArrivalPoisson:
		a.mu.Lock()
		g := a.rng.ExpFloat64()
		a.mu.Unlock()
		return time.Duration(g * float64(a.mean))
	default:
		return 0
	}
}

// Mix is a weighted traffic mix over named scenarios, e.g.
// "twohop=3,tc=1,reach=1". Weights are relative; a bare name means
// weight 1.
type Mix struct {
	names   []string
	weights []float64
	total   float64
}

// ParseMix parses a comma-separated name=weight list.
func ParseMix(s string) (*Mix, error) {
	m := &Mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wtext, hasW := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("workload: empty scenario name in mix %q", s)
		}
		w := 1.0
		if hasW {
			var err error
			w, err = strconv.ParseFloat(strings.TrimSpace(wtext), 64)
			if err != nil || w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("workload: bad weight for %q in mix %q", name, s)
			}
		}
		m.names = append(m.names, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if len(m.names) == 0 || m.total <= 0 {
		return nil, fmt.Errorf("workload: mix %q selects nothing", s)
	}
	return m, nil
}

// Names returns the scenario names in declaration order.
func (m *Mix) Names() []string { return append([]string(nil), m.names...) }

// Pick maps u ∈ [0,1) onto a scenario by weight. The caller owns the
// randomness so runs stay deterministic per seed.
func (m *Mix) Pick(u float64) string {
	target := u * m.total
	acc := 0.0
	for i, w := range m.weights {
		acc += w
		if target < acc {
			return m.names[i]
		}
	}
	return m.names[len(m.names)-1]
}

// LatencyRecorder accumulates request latencies and reports percentiles.
// Observation is mutex-guarded append; reporting sorts a copy.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one latency.
func (r *LatencyRecorder) Observe(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Count returns the number of observations.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// sorted returns a sorted copy of the samples.
func (r *LatencyRecorder) sorted() []time.Duration {
	r.mu.Lock()
	out := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-th percentile (p in [0,100], nearest-rank), or
// 0 with no samples.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	s := r.sorted()
	if len(s) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Mean returns the mean latency, or 0 with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.samples {
		sum += d
	}
	return sum / time.Duration(len(r.samples))
}

// Attainment returns the fraction of observations at or under slo.
func (r *LatencyRecorder) Attainment(slo time.Duration) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	ok := 0
	for _, d := range r.samples {
		if d <= slo {
			ok++
		}
	}
	return float64(ok) / float64(len(r.samples))
}

// HistogramPercentile estimates the p-th percentile (p in [0,100]) from a
// cumulative Prometheus histogram: bounds are the le upper bounds in
// ascending order (without +Inf) and cum the matching cumulative counts,
// with total the overall count (the +Inf bucket). Linear interpolation
// within the winning bucket, like Prometheus's histogram_quantile. Used by
// bvqload to turn scraped bvqd_query_latency_seconds deltas into
// server-side percentiles.
func HistogramPercentile(bounds []float64, cum []float64, total float64, p float64) float64 {
	if total <= 0 || len(bounds) == 0 || len(bounds) != len(cum) {
		return math.NaN()
	}
	target := p / 100 * total
	prevCum, prevBound := 0.0, 0.0
	for i, b := range bounds {
		if cum[i] >= target {
			in := cum[i] - prevCum
			if in <= 0 {
				return b
			}
			return prevBound + (b-prevBound)*(target-prevCum)/in
		}
		prevCum, prevBound = cum[i], b
	}
	// Landed in the +Inf bucket: the largest finite bound is the best
	// answer available.
	return bounds[len(bounds)-1]
}
