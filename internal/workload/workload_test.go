package workload

import (
	"testing"

	"repro/internal/relation"
)

func TestLineGraph(t *testing.T) {
	db := LineGraph(5)
	if db.Size() != 5 {
		t.Fatalf("Size = %d", db.Size())
	}
	e, err := db.Rel("E")
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 {
		t.Fatalf("E has %d edges, want 4", e.Len())
	}
	for i := 0; i < 4; i++ {
		if !e.Contains(relation.Tuple{i, i + 1}) {
			t.Fatalf("missing edge %d→%d", i, i+1)
		}
	}
	p, _ := db.Rel("P")
	if !p.Contains(relation.Tuple{0}) || p.Len() != 1 {
		t.Fatalf("P = %v", p)
	}
}

func TestCycleGraph(t *testing.T) {
	db := CycleGraph(4)
	e, _ := db.Rel("E")
	if e.Len() != 4 || !e.Contains(relation.Tuple{3, 0}) {
		t.Fatalf("cycle E = %v", e)
	}
}

func TestLollipopShape(t *testing.T) {
	db := Lollipop(8)
	e, _ := db.Rel("E")
	// Line edges 0→1…6→7 plus the closing edge 7→4.
	if e.Len() != 8 {
		t.Fatalf("lollipop E = %v", e)
	}
	if !e.Contains(relation.Tuple{7, 4}) {
		t.Fatalf("missing cycle-closing edge: %v", e)
	}
	p, _ := db.Rel("P")
	if !p.Contains(relation.Tuple{0}) || !p.Contains(relation.Tuple{4}) {
		t.Fatalf("P = %v", p)
	}
}

func TestRandomGraphDeterministicPerSeed(t *testing.T) {
	a := RandomGraph(42, 10, 3)
	b := RandomGraph(42, 10, 3)
	if a.String() != b.String() {
		t.Fatal("same seed produced different graphs")
	}
	c := RandomGraph(43, 10, 3)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
	ea, _ := a.Rel("E")
	ea.ForEach(func(tp relation.Tuple) {
		if tp[0] < 0 || tp[0] >= 10 || tp[1] < 0 || tp[1] >= 10 {
			t.Fatalf("edge out of range: %v", tp)
		}
	})
}

func TestCorporateInvariants(t *testing.T) {
	db := Corporate(7, 12)
	for _, name := range []string{"EMP", "MGR", "SCY", "SAL", "SAL2"} {
		if !db.HasRelation(name) {
			t.Fatalf("missing relation %s", name)
		}
	}
	emp, _ := db.RelValues("EMP")
	if emp.Len() != 12 {
		t.Fatalf("EMP has %d rows, want 12", emp.Len())
	}
	sal, _ := db.RelValues("SAL")
	sal2, _ := db.RelValues("SAL2")
	if !sal.Equal(sal2) {
		t.Fatal("SAL and SAL2 must be identical copies")
	}
	// Every employee's department has a manager row.
	mgr, _ := db.RelValues("MGR")
	deptHasMgr := map[int]bool{}
	mgr.ForEach(func(tp relation.Tuple) { deptHasMgr[tp[0]] = true })
	bad := false
	emp.ForEach(func(tp relation.Tuple) {
		if !deptHasMgr[tp[1]] {
			bad = true
		}
	})
	if bad {
		t.Fatal("employee assigned to a manager-less department")
	}
}

func TestRandomKripke(t *testing.T) {
	k := RandomKripke(5, 8, 3)
	if k.States() != 8 {
		t.Fatalf("States = %d", k.States())
	}
	for s := 0; s < 8; s++ {
		for _, succ := range k.Succ(s) {
			if succ < 0 || succ >= 8 {
				t.Fatalf("successor out of range: %d", succ)
			}
		}
	}
	// Deterministic per seed.
	k2 := RandomKripke(5, 8, 3)
	for s := 0; s < 8; s++ {
		if len(k.Succ(s)) != len(k2.Succ(s)) {
			t.Fatal("same seed produced different structures")
		}
	}
}

func TestTinySizes(t *testing.T) {
	for _, n := range []int{1, 2} {
		LineGraph(n)
		CycleGraph(n)
		Lollipop(n)
	}
}
