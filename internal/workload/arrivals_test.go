package workload

import (
	"math"
	"testing"
	"time"
)

func TestArrivalsClosedHasNoClock(t *testing.T) {
	a, err := NewArrivals(ArrivalClosed, 0, 1)
	if err != nil {
		t.Fatalf("NewArrivals: %v", err)
	}
	if !a.Closed() {
		t.Fatalf("closed process not Closed()")
	}
	for i := 0; i < 5; i++ {
		if g := a.Next(); g != 0 {
			t.Fatalf("closed gap = %v, want 0", g)
		}
	}
}

func TestArrivalsOpenFixedGap(t *testing.T) {
	a, err := NewArrivals(ArrivalOpen, 200, 1)
	if err != nil {
		t.Fatalf("NewArrivals: %v", err)
	}
	want := 5 * time.Millisecond
	for i := 0; i < 3; i++ {
		if g := a.Next(); g != want {
			t.Fatalf("open gap = %v, want %v", g, want)
		}
	}
}

func TestArrivalsPoissonMeanAndDeterminism(t *testing.T) {
	const rate, n = 100.0, 20000
	a, err := NewArrivals(ArrivalPoisson, rate, 42)
	if err != nil {
		t.Fatalf("NewArrivals: %v", err)
	}
	b, _ := NewArrivals(ArrivalPoisson, rate, 42)
	var sum time.Duration
	for i := 0; i < n; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, ga, gb)
		}
		if ga < 0 {
			t.Fatalf("negative gap %v", ga)
		}
		sum += ga
	}
	mean := sum.Seconds() / n
	// Mean gap should be ~1/rate = 10ms; the exponential's CLT error at
	// n=20000 is well under 5%.
	if math.Abs(mean-1/rate) > 0.05/rate {
		t.Fatalf("poisson mean gap = %vs, want ~%vs", mean, 1/rate)
	}
}

func TestArrivalsRejectsBadInput(t *testing.T) {
	if _, err := NewArrivals("burst", 10, 1); err == nil {
		t.Fatalf("unknown kind accepted")
	}
	if _, err := NewArrivals(ArrivalPoisson, 0, 1); err == nil {
		t.Fatalf("zero rate accepted for poisson")
	}
}

func TestParseMixWeightsAndPick(t *testing.T) {
	m, err := ParseMix("twohop=3, tc=1 ,reach")
	if err != nil {
		t.Fatalf("ParseMix: %v", err)
	}
	if got := m.Names(); len(got) != 3 || got[0] != "twohop" || got[1] != "tc" || got[2] != "reach" {
		t.Fatalf("Names = %v", got)
	}
	// Total weight 5: [0,3) → twohop, [3,4) → tc, [4,5) → reach.
	cases := map[float64]string{0: "twohop", 0.59: "twohop", 0.61: "tc", 0.79: "tc", 0.81: "reach", 0.999: "reach"}
	for u, want := range cases {
		if got := m.Pick(u); got != want {
			t.Fatalf("Pick(%v) = %q, want %q", u, got, want)
		}
	}
	// Degenerate u=1 (rand gives [0,1) but be safe).
	if got := m.Pick(1); got != "reach" {
		t.Fatalf("Pick(1) = %q", got)
	}
}

func TestParseMixRejectsBadInput(t *testing.T) {
	for _, s := range []string{"", "=3", "a=-1", "a=x", "a=0,b=0", ","} {
		if _, err := ParseMix(s); err == nil {
			t.Fatalf("ParseMix(%q) accepted", s)
		}
	}
}

func TestLatencyRecorderPercentiles(t *testing.T) {
	var r LatencyRecorder
	if r.Percentile(50) != 0 || r.Mean() != 0 {
		t.Fatalf("empty recorder not zero")
	}
	// 1..100 ms.
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := r.Count(); got != 100 {
		t.Fatalf("Count = %d", got)
	}
	for _, c := range []struct {
		p    float64
		want time.Duration
	}{{50, 50 * time.Millisecond}, {90, 90 * time.Millisecond}, {99, 99 * time.Millisecond}, {100, 100 * time.Millisecond}} {
		if got := r.Percentile(c.p); got != c.want {
			t.Fatalf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got, want := r.Mean(), 50500*time.Microsecond; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if got := r.Attainment(75 * time.Millisecond); got != 0.75 {
		t.Fatalf("Attainment = %v, want 0.75", got)
	}
}

func TestHistogramPercentile(t *testing.T) {
	// 100 observations: 50 in (0, 0.01], 40 in (0.01, 0.1], 10 in (0.1, 1].
	bounds := []float64{0.01, 0.1, 1}
	cum := []float64{50, 90, 100}
	if got := HistogramPercentile(bounds, cum, 100, 50); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("P50 = %v, want 0.01", got)
	}
	// P75: target 75 lands in the second bucket, 25/40 of the way through.
	want := 0.01 + (0.1-0.01)*25/40
	if got := HistogramPercentile(bounds, cum, 100, 75); math.Abs(got-want) > 1e-9 {
		t.Fatalf("P75 = %v, want %v", got, want)
	}
	if got := HistogramPercentile(bounds, cum, 100, 99); math.Abs(got-0.91) > 1e-9 {
		t.Fatalf("P99 = %v, want 0.91", got)
	}
	if got := HistogramPercentile(nil, nil, 0, 50); !math.IsNaN(got) {
		t.Fatalf("empty histogram gave %v, want NaN", got)
	}
	// All mass beyond the largest finite bound clamps to it.
	if got := HistogramPercentile([]float64{0.01}, []float64{0}, 10, 50); got != 0.01 {
		t.Fatalf("+Inf-bucket percentile = %v, want 0.01", got)
	}
}
