// Package workload generates the deterministic (seeded) inputs used by the
// examples, the benchmark harness and the integration tests: graphs, the
// §1 corporate database, Kripke structures, and wrappers around the
// instance generators of the reduction packages.
package workload

import (
	"math/rand"

	"repro/internal/database"
	"repro/internal/mucalc"
)

// LineGraph is the path 0 → 1 → … → n−1 with P = {0}.
func LineGraph(n int) *database.Database {
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i+1 < n; i++ {
		b.Add("E", i, i+1)
	}
	if n > 0 {
		b.Add("P", 0)
	}
	return b.MustBuild()
}

// CycleGraph is the directed n-cycle with P = {0}.
func CycleGraph(n int) *database.Database {
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
		b.Add("E", i, (i+1)%n)
	}
	if n > 0 {
		b.Add("P", 0)
	}
	return b.MustBuild()
}

// Lollipop is a line of ⌈n/2⌉ nodes feeding a cycle on the remaining
// nodes, with P marking the line's start and one cycle node. Alternating
// fixpoint queries on it make the outer gfp shrink for Θ(n) stages while
// the inner lfp needs Θ(n) rounds per stage — the n^{kl} worst case of
// naive nested evaluation.
func Lollipop(n int) *database.Database {
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	half := n / 2
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i+1 < n; i++ {
		b.Add("E", i, i+1)
	}
	if n > half {
		b.Add("E", n-1, half) // close the cycle
	}
	if n > 0 {
		b.Add("P", 0)
	}
	if n > half {
		b.Add("P", half)
	}
	return b.MustBuild()
}

// RandomGraph is a digraph on n nodes where each edge appears with
// probability 1/edgeInv, and each node carries P with probability 1/2.
func RandomGraph(seed int64, n, edgeInv int) *database.Database {
	r := rand.New(rand.NewSource(seed))
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Intn(edgeInv) == 0 {
				b.Add("E", i, j)
			}
		}
		if r.Intn(2) == 0 {
			b.Add("P", i)
		}
	}
	return b.MustBuild()
}

// ForestGraph is the disjoint union of ⌈n/block⌉ directed paths, each on
// `block` consecutive nodes, with P marking the path roots. Its transitive
// closure has at most n·block pairs regardless of n, which makes it the
// canonical large-domain workload for the sparse backend: the n² (or nᵏ)
// space is astronomically bigger than anything the query ever touches.
func ForestGraph(n, block int) *database.Database {
	if block < 1 {
		block = 1
	}
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
		if i%block == 0 {
			b.Add("P", i)
		} else {
			b.Add("E", i-1, i)
		}
	}
	return b.MustBuild()
}

// SparseDigraph draws a random digraph with expected out-degree deg by
// sampling ⌊n·deg⌋ directed edges uniformly (self-loops excluded,
// duplicates deduplicated by the database). Unlike RandomGraph it costs
// O(edges), not O(n²), so it scales to the 10⁴–10⁵ node domains the sparse
// backend exists for. Keep deg below 1 for bounded reachability: past the
// ~1/node percolation threshold the transitive closure is Θ(n²) tuples no
// matter how sparse the edge set looks.
func SparseDigraph(seed int64, n int, deg float64) *database.Database {
	r := rand.New(rand.NewSource(seed))
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	edges := int(float64(n) * deg)
	for e := 0; e < edges; e++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.Add("E", u, v)
		}
	}
	for i := 0; i < n; i += 97 {
		b.Add("P", i)
	}
	return b.MustBuild()
}

// Corporate is the §1 EMP/MGR/SCY/SAL database: employees 0..ne−1,
// departments ne…, each department with a manager and the manager with a
// secretary, every employee with a department and a salary. SAL2 duplicates
// SAL so conjunctive queries can mention it twice under different names.
func Corporate(seed int64, ne int) *database.Database {
	r := rand.New(rand.NewSource(seed))
	nd := 1 + ne/3
	b := database.NewBuilder().
		Relation("EMP", 2).Relation("MGR", 2).Relation("SCY", 2).
		Relation("SAL", 2).Relation("SAL2", 2)
	for d := 0; d < nd; d++ {
		m := r.Intn(ne)
		b.Add("MGR", ne+d, m)
		b.Add("SCY", m, r.Intn(ne))
	}
	salBase := ne + nd
	for e := 0; e < ne; e++ {
		b.Add("EMP", e, ne+r.Intn(nd))
		s := salBase + r.Intn(8)
		b.Add("SAL", e, s)
		b.Add("SAL2", e, s)
	}
	return b.MustBuild()
}

// RandomKripke is a Kripke structure on n states with edge probability
// 1/edgeInv and propositions p (probability 1/2) and q (probability 1/3).
func RandomKripke(seed int64, n, edgeInv int) *mucalc.Kripke {
	r := rand.New(rand.NewSource(seed))
	k := mucalc.NewKripke(n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if r.Intn(edgeInv) == 0 {
				k.AddEdge(s, t)
			}
		}
		if r.Intn(2) == 0 {
			k.Label(s, "p")
		}
		if r.Intn(3) == 0 {
			k.Label(s, "q")
		}
	}
	return k
}
