package bvq

// Benchmark harness: one family per row of the paper's Tables 1–3 (see
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// results). The absolute numbers are machine-dependent; the *shapes* are
// the reproduction targets:
//
//	T2-FO    combined complexity of FOᵏ: naive evaluation explodes with the
//	         expression length m, bottom-up stays ~linear (PSPACE vs PTIME).
//	T2-FO-h  Prop 3.2: evaluating the FO³ reduction of Path Systems tracks
//	         the PTIME-complete problem; the direct solver is the baseline.
//	T2-FP    Thm 3.5: naive nested fixpoints cost n^{kl}; certificate
//	         verification costs l·nᵏ (exponential vs linear in the
//	         alternation depth l).
//	T2-ESO   Cor 3.7: naive relation enumeration is doubly exponential in
//	         the quantified arity; Lemma 3.6 + grounding + SAT is not.
//	T2-PFP   Thm 3.8: PFP runs under the two cycle detectors (hash: more
//	         memory; Brent: constant live relations, ~3× the stages).
//	T3-FO    Thm 4.1/Lemma 4.2: at fixed B, the one-pass stack evaluation
//	         of a compiled word is linear in the expression length.
//	T3-ESO   Thm 4.5: SAT → ESO⁰ over a fixed database; cost tracks SAT.
//	T3-PFP   Thm 4.6: QBF → PFP² over B₀; cost is exponential in the
//	         number of quantifiers for both the reduction route and the
//	         direct solver.
//	APP-MU   §1: µ-calculus model checking, direct vs FP² vs certified.
//	OPT-*    §1/§5: intermediate-result minimization (employees join,
//	         variable-minimized chain queries).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/eval"
	"repro/internal/eval/eso"
	"repro/internal/grammar"
	"repro/internal/logic"
	"repro/internal/mucalc"
	"repro/internal/pathsys"
	"repro/internal/prop"
	"repro/internal/qbf"
	"repro/internal/queryopt"
	"repro/internal/relation"
	"repro/internal/workload"
)

// ---- T2-FO: combined complexity of FOᵏ ----

func pathQuery(b *testing.B, m int) logic.Query {
	b.Helper()
	q, err := queryopt.ChainToFO3(m)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func BenchmarkT2FO_Naive(b *testing.B) {
	db := workload.LineGraph(8)
	for _, m := range []int{2, 3, 4} {
		q := pathQuery(b, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Naive(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT2FO_BottomUp(b *testing.B) {
	db := workload.LineGraph(8)
	for _, m := range []int{2, 4, 8, 16, 32} {
		q := pathQuery(b, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BottomUp(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- T2-FO-hardness: Prop 3.2 ----

func BenchmarkT2FOHardness(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		r := rand.New(rand.NewSource(int64(n)))
		in := pathsys.Random(r, n, 3*n)
		db, err := in.ToDatabase()
		if err != nil {
			b.Fatal(err)
		}
		q, err := pathsys.Query(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("reduction/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BottomUp(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in.Solve()
			}
		})
	}
}

// ---- T2-FP: Thm 3.5 ----

// alternating builds the depth-d alternating reachability formula used by
// the certificate tests.
func alternating(d int) logic.Query {
	step := func(rel string, inner logic.Formula) logic.Formula {
		return logic.Or(inner,
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R(rel, "x")), "x")), "z"))
	}
	f := logic.Formula(logic.R("P", "x"))
	op := logic.LFP
	for i := 1; i <= d; i++ {
		rel := fmt.Sprintf("S%d", i)
		body := step(rel, f)
		if op == logic.GFP {
			body = logic.And(step(rel, f), logic.Or(logic.R(rel, "x"), logic.True))
		}
		f = logic.Fix{Op: op, Rel: rel, Vars: []logic.Var{"x"}, Body: body, Args: []logic.Var{"x"}}
		if op == logic.LFP {
			op = logic.GFP
		} else {
			op = logic.LFP
		}
	}
	return logic.MustQuery([]logic.Var{"x"}, f)
}

func BenchmarkT2FP_NaiveNested(b *testing.B) {
	db := workload.CycleGraph(6)
	for _, d := range []int{1, 2, 3} {
		q := alternating(d)
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BottomUp(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// shrinkingNuMu drives the n^{kl} worst case: the outer ν drops one node
// per stage and the inner µ costs Θ(n) per stage under cold restarts.
func shrinkingNuMu() logic.Query {
	hasSuccInS := logic.Exists(logic.And(logic.R("E", "x", "y"),
		logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x")), "y")
	innerBody := logic.Or(
		logic.And(logic.R("P", "x"), logic.R("S", "x")),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("T", "x")), "x")), "z"))
	inner := logic.Lfp("T", []logic.Var{"x"}, innerBody, "x")
	outer := logic.Gfp("S", []logic.Var{"x"}, logic.And(hasSuccInS, inner), "x")
	return logic.MustQuery([]logic.Var{"x"}, outer)
}

func BenchmarkT2FP_ShrinkNaive(b *testing.B) {
	q := shrinkingNuMu()
	for _, n := range []int{8, 16, 24} {
		db := workload.LineGraph(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BottomUp(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT2FP_ShrinkVerify(b *testing.B) {
	q := shrinkingNuMu()
	for _, n := range []int{8, 16, 24} {
		db := workload.LineGraph(n)
		cert, _, err := eval.FindCertificate(q, db)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.VerifyCertificate(q, db, cert); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT2FP_FindCertificate(b *testing.B) {
	db := workload.CycleGraph(6)
	for _, d := range []int{1, 2, 3} {
		q := alternating(d)
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.FindCertificate(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT2FP_Verify(b *testing.B) {
	db := workload.CycleGraph(6)
	for _, d := range []int{1, 2, 3} {
		q := alternating(d)
		cert, _, err := eval.FindCertificate(q, db)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.VerifyCertificate(q, db, cert); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- T2-ESO: Cor 3.7 ----

// esoQuery quantifies an arity-a relation in a two-variable sentence.
func esoQuery(a int) logic.Formula {
	args1 := make([]logic.Var, a)
	args2 := make([]logic.Var, a)
	for i := range args1 {
		args1[i] = "x"
		args2[i] = "y"
		if i%2 == 1 {
			args1[i] = "y"
			args2[i] = "x"
		}
	}
	return logic.SOExists(
		logic.And(
			logic.Exists(logic.R("S", args1...), "x", "y"),
			logic.Forall(logic.Implies(logic.R("S", args2...), logic.R("E", "x", "y")), "x", "y")),
		logic.RelVar{Name: "S", Arity: a})
}

func BenchmarkT2ESO_NaiveEnum(b *testing.B) {
	db := workload.LineGraph(2)
	for _, a := range []int{2, 3, 4} { // 2^4, 2^8, 2^16 candidate relations
		f := esoQuery(a)
		b.Run(fmt.Sprintf("arity=%d", a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.NaiveHolds(f, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkT2ESO_ReducedSAT(b *testing.B) {
	db := workload.LineGraph(2)
	for _, a := range []int{2, 3, 4, 6, 8} {
		f := esoQuery(a)
		b.Run(fmt.Sprintf("arity=%d", a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := eso.Holds(f, db, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- T2-PFP: Thm 3.8 ----

// growPFP converges after ~n stages: it accumulates the E-reachable set.
func growPFP() logic.Query {
	grow := logic.Or(
		logic.R("S", "x"),
		logic.Or(logic.R("P", "x"),
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")))
	return logic.MustQuery([]logic.Var{"u"}, logic.Pfp("S", []logic.Var{"x"}, grow, "u"))
}

func BenchmarkT2PFP(b *testing.B) {
	q := growPFP()
	for _, n := range []int{8, 16, 32} {
		db := workload.LineGraph(n)
		for mode, name := range map[eval.CycleMode]string{eval.CycleHash: "hash", eval.CycleBrent: "brent"} {
			opts := &eval.Options{PFPCycle: mode}
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := eval.BottomUpStats(q, db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- T3-FO: Thm 4.1 / Cor 4.3 ----

func BenchmarkT3FO_StackPass(b *testing.B) {
	db := boolexpr.FixedDatabase()
	ev, err := grammar.NewWordEvaluator(db, []logic.Var{"x", "y", "z"})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{4, 16, 64, 256} {
		q := pathQueryB(b, m)
		word, err := grammar.Compile(q.Body)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("len=%d", len(word)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(word); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func pathQueryB(b *testing.B, m int) logic.Query {
	b.Helper()
	// Same φ_m family but over relation P's fixed database: use E absent;
	// reuse the chain over "P"-only db is degenerate, so use E on B₀ with
	// an empty E relation — the shape (work per token) is what is measured.
	f := logic.Formula(logic.R("P", "x"))
	for i := 1; i < m; i++ {
		f = logic.Exists(logic.And(logic.R("P", "z"),
			logic.Exists(logic.And(logic.Equal("x", "z"), f), "x")), "z")
	}
	q, err := logic.NewQuery([]logic.Var{"x", "y", "z"}, logic.And(f, logic.And(logic.Equal("y", "y"), logic.Equal("z", "z"))))
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func BenchmarkT3FO_BottomUpSameWords(b *testing.B) {
	db := boolexpr.FixedDatabase()
	for _, m := range []int{4, 16, 64, 256} {
		q := pathQueryB(b, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BottomUp(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- T3-ESO: Thm 4.5 ----

func BenchmarkT3ESO(b *testing.B) {
	db := boolexpr.FixedDatabase()
	for _, vars := range []int{8, 16, 24} {
		r := rand.New(rand.NewSource(int64(vars)))
		f := prop.Random3CNF(r, vars, 4*vars)
		sentence := prop.ToESO(f)
		b.Run(fmt.Sprintf("reduction/vars=%d", vars), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := eso.Holds(sentence, db, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("directSAT/vars=%d", vars), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prop.Satisfiable(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- T3-PFP: Thm 4.6 ----

func BenchmarkT3PFP(b *testing.B) {
	db := qbf.FixedDatabase()
	for _, l := range []int{2, 4, 6} {
		r := rand.New(rand.NewSource(int64(l)))
		in := qbf.Random(r, l, 3)
		q, err := qbf.ToPFP(in)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("reduction/l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BottomUp(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("direct/l=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := in.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- APP-MU: µ-calculus model checking ----

func BenchmarkAppMuCalculus(b *testing.B) {
	f := mucalc.InfinitelyOften(mucalc.Prop{Name: "p"})
	for _, n := range []int{8, 16, 32} {
		k := workload.RandomKripke(int64(n), n, 3)
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mucalc.Check(k, f); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("viaFP2/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mucalc.CheckViaFP2(k, f); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("certified/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := mucalc.CheckCertified(k, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- OPT: intermediate-result minimization ----

func employeesCQ() *queryopt.CQ {
	return &queryopt.CQ{
		Head: []logic.Var{"e", "se", "ss"},
		Atoms: []queryopt.Atom{
			{Rel: "EMP", Vars: []logic.Var{"e", "d"}},
			{Rel: "MGR", Vars: []logic.Var{"d", "m"}},
			{Rel: "SCY", Vars: []logic.Var{"m", "s"}},
			{Rel: "SAL", Vars: []logic.Var{"e", "se"}},
			{Rel: "SAL2", Vars: []logic.Var{"s", "ss"}},
		},
	}
}

func BenchmarkOptEmployees_Naive(b *testing.B) {
	q := employeesCQ()
	for _, ne := range []int{4, 8, 12} {
		db := workload.Corporate(int64(ne), ne)
		b.Run(fmt.Sprintf("ne=%d", ne), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := queryopt.EvalNaive(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptEmployees_Yannakakis(b *testing.B) {
	q := employeesCQ()
	for _, ne := range []int{4, 8, 12, 48, 192} {
		db := workload.Corporate(int64(ne), ne)
		b.Run(fmt.Sprintf("ne=%d", ne), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := queryopt.EvalYannakakis(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptVarMin(b *testing.B) {
	db := workload.LineGraph(12)
	for _, m := range []int{2, 3, 4} {
		wide := wideChain(b, m)
		narrow := pathQuery(b, m)
		b.Run(fmt.Sprintf("wideNaive/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Naive(wide, db); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fo3BottomUp/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BottomUp(narrow, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptMinimizeWidth(b *testing.B) {
	db := workload.LineGraph(10)
	for _, m := range []int{3, 5, 7} {
		q := queryopt.ChainCQ(m)
		minimized, _, err := queryopt.MinimizeWidth(q)
		if err != nil {
			b.Fatal(err)
		}
		direct, err := q.ToFO()
		if err != nil {
			b.Fatal(err)
		}
		if m <= 5 { // the unminimized width-(m+1) form stops being runnable
			b.Run(fmt.Sprintf("directFO/m=%d", m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eval.BottomUp(direct, db); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("minimized/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.BottomUp(minimized, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func wideChain(b *testing.B, m int) logic.Query {
	b.Helper()
	vars := make([]logic.Var, m+1)
	vars[0] = "x"
	vars[m] = "y"
	for i := 1; i < m; i++ {
		vars[i] = logic.Var(fmt.Sprintf("z%d", i))
	}
	conj := make([]logic.Formula, m)
	for i := 0; i < m; i++ {
		conj[i] = logic.R("E", vars[i], vars[i+1])
	}
	return logic.MustQuery([]logic.Var{"x", "y"}, logic.Exists(logic.And(conj...), vars[1:m]...))
}

// ---- KERNELS: word-parallel dense-relation microbenchmarks ----
//
// The quantifier kernels are the inner loop of every bottom-up evaluation:
// one ExistsAxis/ForallAxis per quantifier per subformula visit. The word/
// ref pairs compare the word-parallel fold (block path for stride ≥ 64,
// masked-word path below) against the bit-level reference oracle.

func randomDenseBench(sp *relation.Space, seed int64) *relation.Dense {
	r := rand.New(rand.NewSource(seed))
	d := sp.Empty()
	for idx := 0; idx < sp.Size(); idx++ {
		if r.Intn(2) == 0 {
			d.AddIndex(idx)
		}
	}
	return d
}

func BenchmarkDenseExistsAxis(b *testing.B) {
	for _, sh := range []struct{ k, n int }{{3, 16}, {3, 32}, {2, 64}} {
		sp := relation.MustSpace(sh.k, sh.n)
		d := randomDenseBench(sp, 1)
		for axis := 0; axis < sh.k; axis++ {
			b.Run(fmt.Sprintf("word/%d^%d/axis=%d", sh.n, sh.k, axis), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d.ExistsAxis(axis).Release()
				}
			})
			b.Run(fmt.Sprintf("ref/%d^%d/axis=%d", sh.n, sh.k, axis), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d.ExistsAxisRef(axis).Release()
				}
			})
		}
	}
}

func BenchmarkDenseForallAxis(b *testing.B) {
	for _, sh := range []struct{ k, n int }{{3, 16}, {3, 32}, {2, 64}} {
		sp := relation.MustSpace(sh.k, sh.n)
		d := randomDenseBench(sp, 2)
		for axis := 0; axis < sh.k; axis++ {
			b.Run(fmt.Sprintf("word/%d^%d/axis=%d", sh.n, sh.k, axis), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d.ForallAxis(axis).Release()
				}
			})
			b.Run(fmt.Sprintf("ref/%d^%d/axis=%d", sh.n, sh.k, axis), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d.ForallAxisRef(axis).Release()
				}
			})
		}
	}
}

// BenchmarkPFPParallel sweeps a parametrized PFP — one independent fixpoint
// run per parameter value — serially and with the worker pool. On a single
// core the two coincide; the benchmark exists to quantify the sweep overhead
// there and the speedup on multi-core machines.
func BenchmarkPFPParallel(b *testing.B) {
	// [pfp S(x). x=y ∨ ∃z(E(z,x) ∧ S(z))](x): reachability-from-y, one run
	// per value of the parameter y.
	body := logic.Or(
		logic.Equal("x", "y"),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))
	q := logic.MustQuery([]logic.Var{"x", "y"}, logic.Pfp("S", []logic.Var{"x"}, body, "x"))
	for _, n := range []int{16, 32} {
		db := workload.LineGraph(n)
		for _, par := range []struct {
			name string
			p    int
		}{{"serial", 1}, {"pool", 0}} {
			opts := &eval.Options{Parallelism: par.p}
			b.Run(fmt.Sprintf("%s/n=%d", par.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := eval.BottomUpStats(q, db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
