// Package bvq is a query-evaluation engine for bounded-variable relational
// queries, reproducing Moshe Y. Vardi, "On the Complexity of
// Bounded-Variable Queries" (PODS 1995).
//
// The paper studies the four query languages FO (relational calculus),
// FP (fixpoint logic), ESO (existential second-order logic) and PFP
// (partial-fixpoint logic), and shows that restricting queries to k
// individual variables — so that every intermediate result is a k-ary,
// polynomial-size relation — collapses their expression and combined
// complexity towards their data complexity. This package exposes the
// corresponding machinery:
//
//   - databases (ParseDatabase / NewDatabase) and queries
//     (ParseQuery / ParseFormula);
//   - evaluation engines: EngineBottomUp (the Prop. 3.1 bounded-variable
//     algorithm for FO/FP/PFP), EngineNaive (the generic exponential-time
//     baseline), EngineAlgebra (free-variable relational algebra, FO only),
//     EngineMonotone (the alternation-free l·nᵏ fast path), EngineESO
//     (Lemma 3.6 arity reduction + grounding + SAT), EngineCompiled
//     (hash-consed query plans with hoisting and semi-naive fixpoints);
//   - Theorem 3.5 certificates: FindCertificate / VerifyCertificate /
//     NegateQuery realize the NP ∩ co-NP bound for FPᵏ.
//
// Subsystems with their own APIs live under internal/: the µ-calculus
// model checker (internal/mucalc), the hardness reductions
// (internal/pathsys, internal/qbf, internal/prop, internal/boolexpr), the
// Lemma 4.2 parenthesis-grammar machinery (internal/grammar), the acyclic
// join optimizer (internal/queryopt), the Datalog engine
// (internal/datalog), and the SAT solver (internal/sat).
package bvq

import (
	"context"
	"fmt"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/eval/eso"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/queryopt"
	"repro/internal/relation"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Database is a relational database (D; R₁, …, R_ℓ). Each Database is
	// an immutable snapshot value; Database.Apply expresses mutation by
	// returning a new snapshot plus the effective Delta (copy-on-write,
	// MVCC-style — holders of the old snapshot are unaffected).
	Database = database.Database
	// Builder assembles a Database.
	Builder = database.Builder
	// Update is one relation's tuple-level change in a Database.Apply call.
	Update = database.Update
	// Delta is the effective difference between a database snapshot and
	// the snapshot Apply returned.
	Delta = database.Delta
	// Query is (x̄)φ — a head tuple and a body formula.
	Query = logic.Query
	// Formula is a formula of FO/FP/ESO/PFP.
	Formula = logic.Formula
	// Var is an individual variable.
	Var = logic.Var
	// Relation is a set of tuples (a query answer).
	Relation = relation.Set
	// Tuple is a tuple of domain elements.
	Tuple = relation.Tuple
	// Certificate is a Theorem 3.5 witness for an FPᵏ evaluation.
	Certificate = eval.Certificate
	// Stats reports evaluation work.
	Stats = eval.Stats
	// Options configures evaluation (width bound, PFP budget, cycle mode).
	Options = eval.Options
)

// NewDatabase returns a database builder.
func NewDatabase() *Builder { return database.NewBuilder() }

// ParseDatabase reads the textual database format:
//
//	domain = {0, 1, 2}
//	E/2 = {(0, 1), (1, 2)}
func ParseDatabase(text string) (*Database, error) { return database.Parse(text) }

// ParseQuery parses "(x, y). exists z. E(x, z) & E(z, y)".
func ParseQuery(text string) (Query, error) { return parser.ParseQuery(text) }

// ParseFormula parses a formula of the concrete syntax, including fixpoints
// "[lfp S(x). P(x) | S(x)](u)" and second-order quantifiers
// "exists2 S/2. …".
func ParseFormula(text string) (Formula, error) { return parser.ParseFormula(text) }

// Width returns the number of distinct individual variables of q: q is an
// Lᵏ query exactly when Width(q) ≤ k (§2.2 of the paper).
func Width(q Query) int { return q.Width() }

// Engine selects an evaluation algorithm.
type Engine int

const (
	// EngineBottomUp is Proposition 3.1: every subformula denotes one
	// width-ary dense relation. Supports FO, FP and PFP.
	EngineBottomUp Engine = iota
	// EngineNaive is the generic assignment-recursion baseline (all four
	// languages; ESO by capped enumeration). Exponential time, trusted.
	EngineNaive
	// EngineAlgebra evaluates FO by classical relational algebra over each
	// subformula's free variables (the §1 intermediate-arity story).
	EngineAlgebra
	// EngineMonotone is the alternation-free FP fast path (l·nᵏ).
	EngineMonotone
	// EngineESO evaluates prenex existential second-order queries via the
	// Lemma 3.6 arity reduction, polynomial grounding, and CDCL SAT.
	EngineESO
	// EngineCertified evaluates an FP query through the Theorem 3.5
	// prover/verifier pair: FindCertificate computes the answer and emits a
	// witness, VerifyCertificate replays it, and the two must agree.
	EngineCertified
	// EngineCompiled lowers the query to a hash-consed DAG plan
	// (internal/plan) and evaluates it incrementally: recursion-free
	// subtrees are computed once, LFP/IFP stages run semi-naive on stage
	// deltas, and independent dirty nodes evaluate in parallel. Supports
	// FO, FP, IFP and PFP with answers byte-identical to EngineBottomUp.
	EngineCompiled
)

func (e Engine) String() string {
	switch e {
	case EngineBottomUp:
		return "bottomup"
	case EngineNaive:
		return "naive"
	case EngineAlgebra:
		return "algebra"
	case EngineMonotone:
		return "monotone"
	case EngineESO:
		return "eso"
	case EngineCertified:
		return "certified"
	case EngineCompiled:
		return "compiled"
	}
	return "unknown"
}

// EngineByName resolves an engine name as used by the CLI.
func EngineByName(name string) (Engine, error) {
	for _, e := range []Engine{EngineBottomUp, EngineNaive, EngineAlgebra, EngineMonotone, EngineESO, EngineCertified, EngineCompiled} {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("bvq: unknown engine %q (want bottomup, naive, algebra, monotone, eso, certified or compiled)", name)
}

// Eval evaluates q against db with the selected engine. The answer is a
// relation over domain indices 0..n−1 (use Database.Value to map back to
// the raw domain). Eval is EvalContext with context.Background — the
// original, uncancellable entry point.
func Eval(q Query, db *Database, engine Engine) (*Relation, error) {
	ans, _, err := EvalStats(q, db, engine, nil)
	return ans, err
}

// EvalContext is Eval honoring a context: cancellation and deadlines are
// observed at iteration boundaries (between fixpoint stages for
// EngineBottomUp/EngineMonotone, between head assignments and fixpoint
// stages for EngineNaive, between relational operations for EngineAlgebra,
// and between the prover and verifier passes for EngineCertified), so a
// returned answer is always byte-identical to an uncancelled run. When the
// context fires, the error wraps ctx.Err(); test for it with
// errors.Is(err, context.DeadlineExceeded) or context.Canceled.
func EvalContext(ctx context.Context, q Query, db *Database, engine Engine) (*Relation, error) {
	ans, _, err := EvalStatsContext(ctx, q, db, engine, nil)
	return ans, err
}

// EvalStats is Eval with options and work statistics (statistics may be nil
// for engines that do not report them).
func EvalStats(q Query, db *Database, engine Engine, opts *Options) (*Relation, *Stats, error) {
	return EvalStatsContext(context.Background(), q, db, engine, opts)
}

// EvalStatsContext is EvalContext with options and work statistics. When the
// context fires mid-evaluation, the returned Stats — where the engine
// reports them — hold the work completed up to the cancellation point (a
// partial reading; the answer is nil).
func EvalStatsContext(ctx context.Context, q Query, db *Database, engine Engine, opts *Options) (*Relation, *Stats, error) {
	switch engine {
	case EngineBottomUp:
		return eval.BottomUpContext(ctx, q, db, opts)
	case EngineNaive:
		ans, err := eval.NaiveContext(ctx, q, db)
		return ans, nil, err
	case EngineAlgebra:
		return eval.AlgebraContext(ctx, q, db)
	case EngineMonotone:
		return eval.MonotoneContext(ctx, q, db, opts)
	case EngineCompiled:
		return eval.CompiledContext(ctx, q, db, opts)
	case EngineESO:
		// The grounding+SAT pipeline has no internal cancellation points;
		// honor an already-expired context before starting.
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("bvq: cancelled: %w", err)
		}
		ans, err := eso.Eval(q, db)
		return ans, nil, err
	case EngineCertified:
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("bvq: cancelled: %w", err)
		}
		cert, res, err := eval.FindCertificate(q, db)
		if err != nil {
			return nil, nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("bvq: cancelled: %w", err)
		}
		ver, err := eval.VerifyCertificate(q, db, cert)
		if err != nil {
			return nil, nil, err
		}
		if !ver.Answer.Equal(res.Answer) {
			return nil, nil, fmt.Errorf("bvq: verifier answer differs from prover answer")
		}
		return ver.Answer, &ver.Stats, nil
	default:
		return nil, nil, fmt.Errorf("bvq: unknown engine %d", engine)
	}
}

// Enumerator streams a query answer one tuple at a time in the canonical
// (lexicographic) tuple order; see eval.Enumerator for the full contract.
// Callers must Close every enumerator, and should clone tuples they retain.
type Enumerator = eval.Enumerator

// EvalEnumContext evaluates q and returns a streaming enumerator over its
// answer. EngineCompiled streams natively — dense denotations decode their
// answer bits lazily, the sparse executor streams sorted head codes, and
// acyclic ∃∧-CQs enumerate from Yannakakis semijoin-reduced relations
// without materializing the product. The other engines materialize as usual
// and stream the finished answer; either way the tuple sequence is
// byte-identical to EvalStatsContext's Answer.Tuples().
//
// The returned Stats (nil for engines that do not report them) is live
// while the enumerator runs; read it only after Close.
func EvalEnumContext(ctx context.Context, q Query, db *Database, engine Engine, opts *Options) (Enumerator, *Stats, error) {
	if engine == EngineCompiled {
		p, err := plan.Compile(q)
		if err != nil {
			return nil, nil, err
		}
		return eval.EvalPlanEnum(ctx, p, db, opts)
	}
	ans, st, err := EvalStatsContext(ctx, q, db, engine, opts)
	if err != nil {
		return nil, st, err
	}
	return eval.NewSetEnumerator(ctx, ans, st), st, nil
}

// Holds evaluates a sentence (a Boolean query) with the given engine.
func Holds(f Formula, db *Database, engine Engine) (bool, error) {
	return HoldsContext(context.Background(), f, db, engine)
}

// HoldsContext is Holds honoring a context (see EvalContext for the
// cancellation granularity).
func HoldsContext(ctx context.Context, f Formula, db *Database, engine Engine) (bool, error) {
	q, err := logic.NewQuery(nil, f)
	if err != nil {
		return false, err
	}
	ans, err := EvalContext(ctx, q, db, engine)
	if err != nil {
		return false, err
	}
	return ans.Len() > 0, nil
}

// FindCertificate proves q's answer and emits a Theorem 3.5 certificate:
// one increasing chain of under-approximations per greatest-fixpoint node.
func FindCertificate(q Query, db *Database) (*Certificate, *Relation, error) {
	cert, res, err := eval.FindCertificate(q, db)
	if err != nil {
		return nil, nil, err
	}
	return cert, res.Answer, nil
}

// VerifyCertificate replays q's evaluation using the certificate's chains,
// checking the Lemma 3.3 post-fixpoint condition at every use; it runs in
// l·nᵏ fixpoint stages. The returned answer is always a subset of the true
// answer, and equals it for certificates from FindCertificate.
func VerifyCertificate(q Query, db *Database, cert *Certificate) (*Relation, error) {
	res, err := eval.VerifyCertificate(q, db, cert)
	if err != nil {
		return nil, err
	}
	return res.Answer, nil
}

// NegateQuery returns the complement query (the co-NP half of Thm 3.5).
func NegateQuery(q Query) (Query, error) { return eval.NegateQuery(q) }

// Conjunctive-query optimization (§1/§5 of the paper).
type (
	// ConjunctiveQuery is answer(Head) ← Atoms.
	ConjunctiveQuery = queryopt.CQ
	// CQAtom is one conjunct of a conjunctive query.
	CQAtom = queryopt.Atom
)

// MinimizeWidth rewrites an acyclic conjunctive query into bounded-variable
// first-order form — the paper's §5 "variable minimization" methodology.
// The returned width is the number of distinct variables of the rewritten
// query; evaluating it with EngineBottomUp keeps every intermediate result
// at that arity.
func MinimizeWidth(q *ConjunctiveQuery) (Query, int, error) {
	return queryopt.MinimizeWidth(q)
}

// Yannakakis evaluates an acyclic conjunctive query with the semijoin
// full-reducer algorithm, never materializing an intermediate wider than a
// join-tree bag plus carried head variables.
func Yannakakis(q *ConjunctiveQuery, db *Database) (*Relation, error) {
	ans, _, err := queryopt.EvalYannakakis(q, db)
	return ans, err
}
