// Command bvqload drives a bvqd server or a bvqrouter fleet with a
// configurable workload and reports client-side latency percentiles next
// to server-side ones derived from the /metrics histogram delta.
//
// The traffic mix names bench scenarios over examples/data/graph.db
// (twohop: the acyclic 2-hop join; tc: the k=3 transitive-closure LFP;
// reach: single-source reachability as a width-3 LFP); -churn makes that
// fraction of operations writes (a toggled E-edge insert/delete through
// /db/{name}/update) and -stream makes that fraction of queries NDJSON
// streams. Arrivals are closed (completion-driven: each worker fires the
// next request when the previous returns), open (fixed-rate clock) or
// poisson (exponential gaps, the memoryless open process).
//
// Usage:
//
//	bvqload -target http://127.0.0.1:8080 [-database graph] [-duration 10s]
//	        [-workers 8] [-arrival closed|open|poisson] [-rate 100]
//	        [-mix twohop=3,tc=1,reach=1] [-churn 0] [-stream 0]
//	        [-timeout 5s] [-seed 1] [-slo 50ms] [-json]
//
// The run report counts responses by status class (429 sheds and 409
// update conflicts are expected backpressure, not failures; any 5xx is),
// prints client-observed P50/P90/P99, and — when /metrics is reachable —
// the delta of bvqd_queries_total, bvqd_shed_total, bvqd_timeouts_total
// and bvqd_errors_total over the run plus server-side P50/P99 interpolated
// from the bvqd_query_latency_seconds bucket delta. Against bvqrouter the
// scraped families are already fleet sums.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// scenarios maps mix names to wire query texts. All three run against
// examples/data/graph.db (E for edges, P for reachability sources).
var scenarios = map[string]string{
	"twohop": "(x, y). exists z. E(x, z) & E(z, y)",
	"tc":     "(x, y). [lfp T(x, y). E(x, y) | (exists z. E(x, z) & T(z, y))](x, y)",
	"reach":  "(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)",
}

type config struct {
	target   string
	database string
	duration time.Duration
	workers  int
	arrival  string
	rate     float64
	mix      *workload.Mix
	churn    float64
	stream   float64
	timeout  time.Duration
	seed     uint64
	slo      time.Duration
	jsonOut  bool
	churnRow [2]int
}

// tally is the shared run ledger.
type tally struct {
	mu      sync.Mutex
	codes   map[int]int
	queries atomic.Int64 // successful (2xx) queries
	streams atomic.Int64 // successful streamed queries
	updates atomic.Int64 // successful updates

	shed       atomic.Int64 // 429
	conflicts  atomic.Int64 // 409 (update base_version races through a router fan-out)
	server5xx  atomic.Int64
	transport  atomic.Int64 // connection/read errors
	badStreams atomic.Int64 // streams whose trailer carried an error
	dropped    atomic.Int64 // open-loop arrivals dropped because all workers were busy

	lat workload.LatencyRecorder
}

func (t *tally) code(c int) {
	t.mu.Lock()
	t.codes[c]++
	t.mu.Unlock()
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvqload:", err)
		os.Exit(2)
	}
	client := &http.Client{Timeout: cfg.timeout + 5*time.Second}

	before, scrapeErr := scrapeMetrics(client, cfg.target)
	start := time.Now()
	tl := run(client, cfg)
	elapsed := time.Since(start)

	var server *serverReport
	if scrapeErr == nil {
		if after, err := scrapeMetrics(client, cfg.target); err == nil {
			server = serverDelta(before, after)
		}
	}
	rep := buildReport(cfg, tl, elapsed, server)
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "bvqload:", err)
			os.Exit(1)
		}
	} else {
		printReport(os.Stdout, rep)
	}
	if rep.Requests == 0 || rep.Succeeded == 0 {
		fmt.Fprintln(os.Stderr, "bvqload: no request succeeded")
		os.Exit(1)
	}
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("bvqload", flag.ContinueOnError)
	var (
		target   = fs.String("target", "http://127.0.0.1:8080", "bvqd or bvqrouter base URL")
		database = fs.String("database", "graph", "database to query")
		duration = fs.Duration("duration", 10*time.Second, "run length")
		workers  = fs.Int("workers", 8, "concurrent workers")
		arrival  = fs.String("arrival", workload.ArrivalClosed, "arrival process: closed, open or poisson")
		rate     = fs.Float64("rate", 100, "target requests/second for open and poisson arrivals")
		mixText  = fs.String("mix", "twohop=3,tc=1,reach=1", "traffic mix over scenarios: twohop, tc, reach")
		churn    = fs.Float64("churn", 0, "fraction of operations that are updates (0..1)")
		stream   = fs.Float64("stream", 0, "fraction of queries issued as NDJSON streams (0..1)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request evaluation deadline")
		seed     = fs.Uint64("seed", 1, "workload RNG seed")
		slo      = fs.Duration("slo", 0, "latency SLO to report attainment against (0: none)")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
		churnRow = fs.String("churn-edge", "60,10", "edge toggled by churn updates, as \"a,b\" domain values")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	mix, err := workload.ParseMix(*mixText)
	if err != nil {
		return nil, err
	}
	for _, name := range mix.Names() {
		if _, ok := scenarios[name]; !ok {
			return nil, fmt.Errorf("unknown scenario %q (have twohop, tc, reach)", name)
		}
	}
	if *churn < 0 || *churn > 1 || *stream < 0 || *stream > 1 {
		return nil, fmt.Errorf("-churn and -stream must be in [0,1]")
	}
	if *workers < 1 {
		return nil, fmt.Errorf("-workers must be positive")
	}
	cfg := &config{
		target:   strings.TrimRight(*target, "/"),
		database: *database,
		duration: *duration,
		workers:  *workers,
		arrival:  *arrival,
		rate:     *rate,
		mix:      mix,
		churn:    *churn,
		stream:   *stream,
		timeout:  *timeout,
		seed:     *seed,
		slo:      *slo,
		jsonOut:  *jsonOut,
	}
	a, b, ok := strings.Cut(*churnRow, ",")
	if !ok {
		return nil, fmt.Errorf("-churn-edge wants \"a,b\", got %q", *churnRow)
	}
	if cfg.churnRow[0], err = strconv.Atoi(strings.TrimSpace(a)); err != nil {
		return nil, fmt.Errorf("-churn-edge: %v", err)
	}
	if cfg.churnRow[1], err = strconv.Atoi(strings.TrimSpace(b)); err != nil {
		return nil, fmt.Errorf("-churn-edge: %v", err)
	}
	return cfg, nil
}

// run drives the workload until the deadline and returns the ledger.
func run(client *http.Client, cfg *config) *tally {
	tl := &tally{codes: make(map[int]int)}
	deadline := time.Now().Add(cfg.duration)
	var churnToggle atomic.Int64

	worker := func(id int, launches <-chan struct{}) {
		rng := rand.New(rand.NewPCG(cfg.seed, uint64(id)*0x9e3779b97f4a7c15+1))
		for time.Now().Before(deadline) {
			if launches != nil {
				if _, ok := <-launches; !ok {
					return
				}
			}
			if cfg.churn > 0 && rng.Float64() < cfg.churn {
				doUpdate(client, cfg, tl, &churnToggle)
			} else {
				name := cfg.mix.Pick(rng.Float64())
				doQuery(client, cfg, tl, name, cfg.stream > 0 && rng.Float64() < cfg.stream)
			}
		}
	}

	var wg sync.WaitGroup
	arr, err := workload.NewArrivals(cfg.arrival, cfg.rate, cfg.seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvqload:", err)
		os.Exit(2)
	}
	if arr.Closed() {
		for i := 0; i < cfg.workers; i++ {
			wg.Add(1)
			go func(id int) { defer wg.Done(); worker(id, nil) }(i)
		}
	} else {
		// Open-loop: a clock goroutine emits launch tokens; workers drain
		// them. A full channel means every worker is busy — dropping the
		// token (rather than blocking) keeps the process honestly open and
		// counts the overload instead of silently degrading to closed.
		launches := make(chan struct{}, cfg.workers)
		for i := 0; i < cfg.workers; i++ {
			wg.Add(1)
			go func(id int) { defer wg.Done(); worker(id, launches) }(i)
		}
		for time.Now().Before(deadline) {
			time.Sleep(arr.Next())
			select {
			case launches <- struct{}{}:
			default:
				tl.dropped.Add(1)
			}
		}
		close(launches)
	}
	wg.Wait()
	return tl
}

func doQuery(client *http.Client, cfg *config, tl *tally, scenario string, stream bool) {
	body, _ := json.Marshal(map[string]any{
		"database":   cfg.database,
		"query":      scenarios[scenario],
		"stream":     stream,
		"timeout_ms": cfg.timeout.Milliseconds(),
	})
	start := time.Now()
	resp, err := client.Post(cfg.target+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		tl.transport.Add(1)
		return
	}
	defer resp.Body.Close()
	tl.code(resp.StatusCode)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		tl.shed.Add(1)
		io.Copy(io.Discard, resp.Body)
		return
	case resp.StatusCode >= 500:
		tl.server5xx.Add(1)
		io.Copy(io.Discard, resp.Body)
		return
	case resp.StatusCode != http.StatusOK:
		io.Copy(io.Discard, resp.Body)
		return
	}
	if !stream {
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			tl.transport.Add(1)
			return
		}
		tl.lat.Observe(time.Since(start))
		tl.queries.Add(1)
		return
	}
	// Drain the NDJSON stream to its trailer; a trailer carrying an error
	// (or a missing one) is a failed stream even though the status was 200.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var last string
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			last = line
		}
	}
	if sc.Err() != nil {
		tl.transport.Add(1)
		return
	}
	var trailer struct {
		Trailer bool   `json:"trailer"`
		Error   string `json:"error"`
	}
	if json.Unmarshal([]byte(last), &trailer) != nil || !trailer.Trailer || trailer.Error != "" {
		tl.badStreams.Add(1)
		return
	}
	tl.lat.Observe(time.Since(start))
	tl.queries.Add(1)
	tl.streams.Add(1)
}

// doUpdate toggles the churn edge: even toggles insert it, odd ones delete
// it, so the database's content stays bounded while every update still
// advances the version chain and invalidates result-cache entries.
func doUpdate(client *http.Client, cfg *config, tl *tally, toggle *atomic.Int64) {
	op := "insert"
	if toggle.Add(1)%2 == 0 {
		op = "delete"
	}
	body, _ := json.Marshal(map[string]any{
		"updates": []map[string]any{{
			"relation": "E",
			op:         [][]int{{cfg.churnRow[0], cfg.churnRow[1]}},
		}},
	})
	resp, err := client.Post(cfg.target+"/db/"+cfg.database+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		tl.transport.Add(1)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	tl.code(resp.StatusCode)
	switch {
	case resp.StatusCode == http.StatusOK:
		tl.updates.Add(1)
	case resp.StatusCode == http.StatusConflict:
		tl.conflicts.Add(1)
	case resp.StatusCode >= 500:
		tl.server5xx.Add(1)
	}
}

// scrapeMetrics GETs /metrics and indexes samples by name and label set.
func scrapeMetrics(client *http.Client, target string) (map[string]map[string]float64, error) {
	resp, err := client.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]float64)
	for _, f := range fams {
		for _, s := range f.Samples {
			bySeries := out[s.Name]
			if bySeries == nil {
				bySeries = make(map[string]float64)
				out[s.Name] = bySeries
			}
			bySeries[labelKey(s.Labels)] += s.Value
		}
	}
	return out, nil
}

func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s,", k, labels[k])
	}
	return b.String()
}

type serverReport struct {
	Queries  float64 `json:"queries"`
	Shed     float64 `json:"shed"`
	Timeouts float64 `json:"timeouts"`
	Errors   float64 `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// serverDelta turns two /metrics snapshots into the run's server-side
// counters and latency percentiles. The latency histogram is the PR-4
// bvqd_query_latency_seconds family: bucket deltas summed across label
// sets (engines; replicas too when scraping a router aggregate), then
// interpolated like histogram_quantile.
func serverDelta(before, after map[string]map[string]float64) *serverReport {
	sumDelta := func(name string) float64 {
		total := 0.0
		for key, v := range after[name] {
			total += v - before[name][key]
		}
		return total
	}
	rep := &serverReport{
		Queries:  sumDelta("bvqd_queries_total"),
		Shed:     sumDelta("bvqd_shed_total"),
		Timeouts: sumDelta("bvqd_timeouts_total"),
		Errors:   sumDelta("bvqd_errors_total"),
	}

	// Collapse bucket series to cumulative counts per le bound.
	byLE := make(map[float64]float64)
	var infDelta float64
	for key, v := range after["bvqd_query_latency_seconds_bucket"] {
		delta := v - before["bvqd_query_latency_seconds_bucket"][key]
		le := leOf(key)
		if math.IsInf(le, 1) {
			infDelta += delta
		} else if !math.IsNaN(le) {
			byLE[le] += delta
		}
	}
	bounds := make([]float64, 0, len(byLE))
	for b := range byLE {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	cum := make([]float64, len(bounds))
	for i, b := range bounds {
		cum[i] = byLE[b]
	}
	if p := workload.HistogramPercentile(bounds, cum, infDelta, 50); !math.IsNaN(p) {
		rep.P50MS = p * 1000
	}
	if p := workload.HistogramPercentile(bounds, cum, infDelta, 99); !math.IsNaN(p) {
		rep.P99MS = p * 1000
	}
	return rep
}

// leOf extracts the le bound from a labelKey-encoded label set.
func leOf(key string) float64 {
	for _, part := range strings.Split(key, ",") {
		if rest, ok := strings.CutPrefix(part, "le="); ok {
			if rest == "+Inf" {
				return math.Inf(1)
			}
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return math.NaN()
			}
			return v
		}
	}
	return math.NaN()
}

type report struct {
	Target    string         `json:"target"`
	Arrival   string         `json:"arrival"`
	DurationS float64        `json:"duration_s"`
	Workers   int            `json:"workers"`
	Requests  int            `json:"requests"`
	Succeeded int64          `json:"succeeded"`
	QPS       float64        `json:"qps"`
	Codes     map[string]int `json:"codes"`
	Queries   int64          `json:"queries"`
	Streams   int64          `json:"streams"`
	Updates   int64          `json:"updates"`
	Shed      int64          `json:"shed"`
	Conflicts int64          `json:"conflicts"`
	Server5xx int64          `json:"server_5xx"`
	Transport int64          `json:"transport_errors"`
	BadStream int64          `json:"bad_streams"`
	Dropped   int64          `json:"dropped_arrivals"`
	Latency   struct {
		P50MS  float64 `json:"p50_ms"`
		P90MS  float64 `json:"p90_ms"`
		P99MS  float64 `json:"p99_ms"`
		MaxMS  float64 `json:"max_ms"`
		MeanMS float64 `json:"mean_ms"`
	} `json:"latency"`
	SLO    *sloReport    `json:"slo,omitempty"`
	Server *serverReport `json:"server,omitempty"`
}

type sloReport struct {
	TargetMS   float64 `json:"target_ms"`
	Attainment float64 `json:"attainment"`
}

func buildReport(cfg *config, tl *tally, elapsed time.Duration, server *serverReport) *report {
	rep := &report{
		Target:    cfg.target,
		Arrival:   cfg.arrival,
		DurationS: elapsed.Seconds(),
		Workers:   cfg.workers,
		Codes:     make(map[string]int),
		Queries:   tl.queries.Load(),
		Streams:   tl.streams.Load(),
		Updates:   tl.updates.Load(),
		Shed:      tl.shed.Load(),
		Conflicts: tl.conflicts.Load(),
		Server5xx: tl.server5xx.Load(),
		Transport: tl.transport.Load(),
		BadStream: tl.badStreams.Load(),
		Dropped:   tl.dropped.Load(),
		Server:    server,
	}
	tl.mu.Lock()
	for code, n := range tl.codes {
		rep.Requests += n
		rep.Codes[strconv.Itoa(code)] = n
	}
	tl.mu.Unlock()
	rep.Requests += int(rep.Transport)
	rep.Succeeded = rep.Queries + rep.Updates
	if elapsed > 0 {
		rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	rep.Latency.P50MS = ms(tl.lat.Percentile(50))
	rep.Latency.P90MS = ms(tl.lat.Percentile(90))
	rep.Latency.P99MS = ms(tl.lat.Percentile(99))
	rep.Latency.MaxMS = ms(tl.lat.Percentile(100))
	rep.Latency.MeanMS = ms(tl.lat.Mean())
	if cfg.slo > 0 {
		rep.SLO = &sloReport{TargetMS: ms(cfg.slo), Attainment: tl.lat.Attainment(cfg.slo)}
	}
	return rep
}

func printReport(w io.Writer, r *report) {
	fmt.Fprintf(w, "bvqload: %s, %s arrivals, %d workers, %.1fs\n", r.Target, r.Arrival, r.Workers, r.DurationS)
	fmt.Fprintf(w, "  requests  %d (%.1f req/s), succeeded %d\n", r.Requests, r.QPS, r.Succeeded)
	codes := make([]string, 0, len(r.Codes))
	for c := range r.Codes {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "    %s: %d\n", c, r.Codes[c])
	}
	fmt.Fprintf(w, "  queries   %d (%d streamed), updates %d\n", r.Queries, r.Streams, r.Updates)
	fmt.Fprintf(w, "  shed %d, conflicts %d, 5xx %d, transport errors %d, bad streams %d",
		r.Shed, r.Conflicts, r.Server5xx, r.Transport, r.BadStream)
	if r.Dropped > 0 {
		fmt.Fprintf(w, ", dropped arrivals %d", r.Dropped)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  latency   p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms  mean %.2fms\n",
		r.Latency.P50MS, r.Latency.P90MS, r.Latency.P99MS, r.Latency.MaxMS, r.Latency.MeanMS)
	if r.SLO != nil {
		fmt.Fprintf(w, "  slo       %.0fms attained %.2f%%\n", r.SLO.TargetMS, 100*r.SLO.Attainment)
	}
	if r.Server != nil {
		fmt.Fprintf(w, "  server    queries %.0f, shed %.0f, timeouts %.0f, errors %.0f, p50 %.2fms, p99 %.2fms\n",
			r.Server.Queries, r.Server.Shed, r.Server.Timeouts, r.Server.Errors, r.Server.P50MS, r.Server.P99MS)
	}
}
