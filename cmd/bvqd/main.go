// Command bvqd serves bounded-variable query evaluation over HTTP: a
// long-running daemon that loads one or more named databases and answers
// queries with plan caching, result caching, single-flight dedup of
// concurrent identical requests, per-request deadlines enforced by
// cancellation at fixpoint-stage boundaries, admission control with
// load shedding, Prometheus metrics, and structured slow-query logs.
//
// Databases are mutable through POST /db/{name}/update: each update is an
// atomic copy-on-write snapshot transition (queries in flight keep their
// snapshot — MVCC isolation), and the result cache is triaged per entry
// instead of flushed — results whose dependency footprint misses the
// delta are carried across, cached fixpoint results are incrementally
// maintained by restarting the fixpoint from the previous state when the
// delta's polarity admits it, and only the rest is invalidated.
//
// Usage:
//
//	bvqd -db graph=examples/data/graph.db [-db corp=examples/data/corporate.db] \
//	     [-addr :8080] [-ordered] [-plan-cache 1024] [-result-cache 4096] \
//	     [-default-timeout 10s] [-max-timeout 60s] \
//	     [-max-concurrent 8] [-max-queue 16] [-retry-after 1s] \
//	     [-slow-query 1s] [-pprof localhost:6060]
//
// Endpoints (see OPERATIONS.md for the full request/response schema):
//
//	POST /query             {"database": "graph", "query": "(x, y). exists z. E(x, z) & E(z, y)"}
//	POST /db/{name}/update  {"updates": [{"relation": "E", "insert": [[40, 10]], "delete": [[10, 20]]}]}
//	GET  /stats             JSON counters: caches, churn, in-flight gauges, aggregate work
//	GET  /metrics           Prometheus text-format metrics
//	GET  /healthz           liveness
//	GET  /version           build info (go version, VCS revision)
//	GET  /debug/traces      flight recorder: recent request traces (and /debug/traces/{id})
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for the -pprof listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/database"
	"repro/internal/server"
)

// dbFlags collects repeated -db name=path flags.
type dbFlags map[string]string

func (f dbFlags) String() string {
	var parts []string
	for k, v := range f {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (f dbFlags) Set(s string) error {
	name, path, ok := strings.Cut(s, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", s)
	}
	if _, dup := f[name]; dup {
		return fmt.Errorf("duplicate database name %q", name)
	}
	f[name] = path
	return nil
}

func main() {
	dbs := dbFlags{}
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		ordered        = flag.Bool("ordered", false, "augment every database with the built-in linear order (enables PTIME-complete FP queries over ordered structures)")
		planCache      = flag.Int("plan-cache", server.DefaultPlanCacheSize, "plan cache capacity in entries (negative disables)")
		resultCache    = flag.Int("result-cache", server.DefaultResultCacheSize, "result cache capacity in entries (negative disables)")
		defaultTimeout = flag.Duration("default-timeout", 10*time.Second, "evaluation deadline for requests that do not set timeout_ms (0: none)")
		maxTimeout     = flag.Duration("max-timeout", time.Minute, "upper clamp on per-request deadlines (0: none)")
		maxConcurrent  = flag.Int("max-concurrent", 0, "max evaluations running at once (0: unlimited)")
		maxQueue       = flag.Int("max-queue", 0, "max requests waiting for an evaluation slot before shedding 429 (0: 2×max-concurrent)")
		retryAfter     = flag.Duration("retry-after", time.Second, "Retry-After floor on shed responses (429, and 504s that timed out while queued)")
		retryJitter    = flag.Duration("retry-after-jitter", 0, "bounded random spread added to -retry-after per shed response (0: half of -retry-after; negative: fixed header)")
		slowQuery      = flag.Duration("slow-query", time.Second, "log requests at least this slow as JSON on stderr (0: disable)")
		pprofAddr      = flag.String("pprof", "", "serve /debug/pprof on this separate address (empty: disabled)")
		traceBuffer    = flag.Int("trace-buffer", 256, "flight-recorder ring size: keep the last N request traces for GET /debug/traces (0: disable lifecycle tracing)")
		traceKeep      = flag.Int("trace-keep", 0, "always-keep buffer for slow/error/shed traces (0: trace-buffer/4, min 8)")
		traceSample    = flag.Int("trace-sample", 1, "record 1 in N requests into the flight recorder (1: every request)")
	)
	flag.Var(dbs, "db", "serve a database as name=path (repeatable); required")
	flag.Parse()
	cfg := server.Config{
		PlanCacheSize:      *planCache,
		ResultCacheSize:    *resultCache,
		DefaultTimeout:     *defaultTimeout,
		MaxTimeout:         *maxTimeout,
		MaxConcurrentEvals: *maxConcurrent,
		MaxEvalQueue:       *maxQueue,
		RetryAfter:         *retryAfter,
		RetryAfterJitter:   *retryJitter,
		SlowQuery:          *slowQuery,
		Logger:             slog.New(slog.NewJSONHandler(os.Stderr, nil)),
		TraceBufferSize:    *traceBuffer,
		TraceKeepSize:      *traceKeep,
		TraceSample:        *traceSample,
	}
	if err := run(dbs, *addr, *pprofAddr, *ordered, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bvqd:", err)
		os.Exit(1)
	}
}

func run(dbs dbFlags, addr, pprofAddr string, ordered bool, cfg server.Config) error {
	if len(dbs) == 0 {
		return fmt.Errorf("missing -db name=path")
	}
	loaded, err := loadDatabases(dbs, ordered)
	if err != nil {
		return err
	}
	cfg.Databases = loaded
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	for name, db := range loaded {
		log.Printf("serving %q: domain %d, relations %v", name, db.Size(), db.Names())
	}
	if pprofAddr != "" {
		// The pprof handlers live on DefaultServeMux (blank import above);
		// serving them on their own listener keeps profiling off the query
		// port, so it can be bound to localhost while /query is public.
		go func() {
			log.Printf("pprof listening on %s", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("bvqd listening on %s", addr)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadDatabases reads every -db file in the textual bvq.ParseDatabase
// format, optionally augmenting each with the linear order on its domain.
func loadDatabases(dbs dbFlags, ordered bool) (map[string]*database.Database, error) {
	out := make(map[string]*database.Database, len(dbs))
	for name, path := range dbs {
		text, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("loading %q: %w", name, err)
		}
		db, err := bvq.ParseDatabase(string(text))
		if err != nil {
			return nil, fmt.Errorf("parsing %q (%s): %w", name, path, err)
		}
		if ordered {
			db, err = db.WithOrder()
			if err != nil {
				return nil, fmt.Errorf("ordering %q: %w", name, err)
			}
		}
		out[name] = db
	}
	return out, nil
}
