// Command bvqbench regenerates the measurable content of Tables 1–3 of
// Vardi (PODS 1995) as parameter sweeps: for every table row it runs the
// paper's algorithm and the generic baseline side by side, prints the
// series, and checks that all engines agree on the answers. EXPERIMENTS.md
// records a run of this tool next to the paper's claims.
//
// Usage: bvqbench [-quick] [-json] [-stream] [-scrape http://host:8080/metrics]
//
// With -json the tool skips the prose tables and instead emits one JSON
// record per (workload, engine, size) cell — see Record in json.go — for
// the engine-comparison workloads (tc-lfp, reach-lfp, mu-fp2, pfp-grow).
//
// With -stream the tool emits the streaming-enumeration records instead
// (see stream.go): time-to-first-tuple, LIMIT-k latency and peak heap for
// the streamed acyclic route next to the materialized baseline, on a
// large-answer two-hop scenario up to n = 10,000.
//
// With -scrape the tool instead fetches a running bvqd's /metrics endpoint,
// validates the Prometheus exposition format, and emits one JSON record per
// sample (see ScrapeRecord in scrape.go) — so a load run's server-side view
// lands in the same JSON-Lines stream as the benchmark records.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/eval/eso"
	"repro/internal/grammar"
	"repro/internal/logic"
	"repro/internal/mucalc"
	"repro/internal/pathsys"
	"repro/internal/prop"
	"repro/internal/qbf"
	"repro/internal/queryopt"
	"repro/internal/workload"
)

var (
	quick      = flag.Bool("quick", false, "smaller sweeps")
	jsonMode   = flag.Bool("json", false, "emit machine-readable engine-comparison records (JSON Lines)")
	streamMode = flag.Bool("stream", false, "emit streaming-enumeration records (TTFT, LIMIT-k, peak heap; JSON Lines)")
	scrapeURL  = flag.String("scrape", "", "scrape a bvqd /metrics endpoint into JSON Lines instead of benchmarking")
)

// writeErr records the first failed write to stdout. Sweep tables are the
// tool's entire product, so a broken pipe or full disk must turn into exit
// status 1 rather than a silently truncated report.
var writeErr error

func outf(format string, a ...any) {
	if _, err := fmt.Fprintf(os.Stdout, format, a...); err != nil && writeErr == nil {
		writeErr = err
	}
}

func outln(a ...any) {
	if _, err := fmt.Fprintln(os.Stdout, a...); err != nil && writeErr == nil {
		writeErr = err
	}
}

func main() {
	flag.Parse()
	if *scrapeURL != "" {
		runScrape(*scrapeURL)
		return
	}
	if *streamMode {
		runStreamBench(*quick)
		return
	}
	if *jsonMode {
		runJSON(*quick)
		return
	}
	outln("bvqbench — reproduction sweeps for Vardi, PODS 1995 (Tables 1–3)")
	outln()
	t1data()
	t2fo()
	t2foHardness()
	t2fp()
	t2ifp()
	t2eso()
	t2pfp()
	t3fo()
	t3fp()
	t3eso()
	t3pfp()
	appMu()
	appCTL()
	optJoins()
	outln("all sweeps completed; all cross-checks passed")
	if writeErr != nil {
		fmt.Fprintln(os.Stderr, "bvqbench: writing output:", writeErr)
		os.Exit(1)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvqbench:", err)
		os.Exit(1)
	}
}

func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

func header(id, claim string) {
	outf("== %s — %s\n", id, claim)
}

// ---- Table 1: data complexity (fixed queries, growing databases) ----

func t1data() {
	header("T1-DATA", "data complexity: fixed queries of all four languages, growing data")
	sizes := []int{8, 16, 32, 64}
	if *quick {
		sizes = []int{8, 16, 32}
	}
	twoHop := logic.MustQuery([]logic.Var{"x", "y"},
		logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("E", "z", "y")), "z"))
	reach := logic.MustQuery([]logic.Var{"u"},
		logic.Lfp("S", []logic.Var{"x"},
			logic.Or(logic.R("P", "x"),
				logic.Exists(logic.And(logic.R("E", "z", "x"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")), "u"))
	twoColor := logic.SOExists(
		logic.Forall(logic.Implies(logic.R("E", "x", "y"),
			logic.Neg(logic.Iff(logic.R("C", "x"), logic.R("C", "y")))), "x", "y"),
		logic.RelVar{Name: "C", Arity: 1})
	pfpGrow := logic.MustQuery([]logic.Var{"u"},
		logic.Pfp("S", []logic.Var{"x"},
			logic.Or(logic.R("S", "x"), logic.Or(logic.R("P", "x"),
				logic.Exists(logic.And(logic.R("E", "z", "x"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))), "u"))
	outf("   %-4s %12s %12s %12s %12s\n", "n", "FO³ 2-hop", "FP³ reach", "ESO² 2col", "PFP² grow")
	for _, n := range sizes {
		db := workload.RandomGraph(int64(n), n, 4)
		tFO := timeIt(func() {
			_, err := eval.BottomUp(twoHop, db)
			die(err)
		})
		tFP := timeIt(func() {
			_, err := eval.BottomUp(reach, db)
			die(err)
		})
		tESO := timeIt(func() {
			_, _, _, err := eso.Holds(twoColor, db, nil)
			die(err)
		})
		tPFP := timeIt(func() {
			_, err := eval.BottomUp(pfpGrow, db)
			die(err)
		})
		outf("   %-4d %12s %12s %12s %12s\n", n,
			tFO.Round(time.Microsecond), tFP.Round(time.Microsecond),
			tESO.Round(time.Microsecond), tPFP.Round(time.Microsecond))
	}
	outln("   shape: with the queries fixed, all four languages scale polynomially")
	outln("   in the data (ESO through SAT is NP but benign on these instances) —")
	outln("   the exponential blow-ups of the other sweeps come from growing the")
	outln("   *expression*, never the data. ✓")
	outln()
}

// ---- Table 2, row FO ----

func t2fo() {
	header("T2-FO", "combined complexity: naive PSPACE (exp. time in |e|) vs FOᵏ bottom-up PTIME")
	db := workload.LineGraph(8)
	naiveMax := 4
	buMax := 32
	if *quick {
		naiveMax, buMax = 3, 16
	}
	outf("   %-4s %14s %14s\n", "m", "naive", "bottomup")
	for m := 2; m <= buMax; m *= 2 {
		q, err := queryopt.ChainToFO3(m)
		die(err)
		var tn time.Duration
		naiveRan := m <= naiveMax
		var a1, a2 interface{ Len() int }
		if naiveRan {
			tn = timeIt(func() {
				ans, err := eval.Naive(q, db)
				die(err)
				a1 = ans
			})
		}
		tb := timeIt(func() {
			ans, err := eval.BottomUp(q, db)
			die(err)
			a2 = ans
		})
		ns := "skipped"
		if naiveRan {
			ns = tn.Round(time.Microsecond).String()
			if a1.Len() != a2.Len() {
				die(fmt.Errorf("T2-FO: engines disagree at m=%d", m))
			}
		}
		outf("   %-4d %14s %14s\n", m, ns, tb.Round(time.Microsecond))
	}
	outln("   shape: naive grows exponentially with m; bottom-up ~linearly. ✓")
	outln()
}

// ---- Table 2, row FO hardness (Prop 3.2) ----

func t2foHardness() {
	header("T2-FO-h", "Prop 3.2: Path Systems ≤ FO³; reduction agrees with the direct solver")
	sizes := []int{4, 8, 12, 16}
	if *quick {
		sizes = []int{4, 8}
	}
	outf("   %-4s %8s %12s %12s %8s\n", "n", "|φ_n|", "reduction", "direct", "agree")
	for _, n := range sizes {
		r := rand.New(rand.NewSource(int64(n)))
		agree := true
		var tr, td time.Duration
		var size int
		for trial := 0; trial < 5; trial++ {
			in := pathsys.Random(r, n, 3*n)
			db, err := in.ToDatabase()
			die(err)
			q, err := pathsys.Query(n)
			die(err)
			size = logic.Size(q.Body)
			var got bool
			tr += timeIt(func() {
				ans, err := eval.BottomUp(q, db)
				die(err)
				got = ans.Len() > 0
			})
			var want bool
			td += timeIt(func() { want = in.Solve() })
			if got != want {
				agree = false
			}
		}
		outf("   %-4d %8d %12s %12s %8v\n", n, size,
			(tr / 5).Round(time.Microsecond), (td / 5).Round(time.Microsecond), agree)
		if !agree {
			die(fmt.Errorf("T2-FO-h: reduction disagreed"))
		}
	}
	outln("   shape: reduction size linear in n; answers agree on 100% of instances. ✓")
	outln()
}

// ---- Table 2, row FP (Thm 3.5) ----

func t2fp() {
	header("T2-FP", "Thm 3.5: naive nested n^{kl} iterations vs certificate verification l·nᵏ")
	// νµ formula on the line graph: the outer gfp drops the tail node each
	// stage (Θ(n) stages) and the naive evaluator recomputes the
	// Θ(n)-round inner lfp at every stage (Θ(n²) total); the verifier
	// checks the guessed gfp value with a single body evaluation.
	q := shrinkingNuMu()
	sizes := []int{8, 16, 32}
	if *quick {
		sizes = []int{8, 16, 24}
	}
	outf("   %-4s %12s %12s %12s %12s %10s\n", "n", "naive-iters", "verify-iters", "naive", "verify", "|cert|")
	for _, n := range sizes {
		db := workload.LineGraph(n)
		var naiveIters, verifyIters int64
		var ans1, ans2 interface{ Len() int }
		tn := timeIt(func() {
			a, st, err := eval.BottomUpStats(q, db, nil)
			die(err)
			naiveIters = st.FixIterations
			ans1 = a
		})
		cert, _, err := eval.FindCertificate(q, db)
		die(err)
		tv := timeIt(func() {
			res, err := eval.VerifyCertificate(q, db, cert)
			die(err)
			verifyIters = res.Stats.FixIterations
			ans2 = res.Answer
		})
		if ans1.Len() != ans2.Len() {
			die(fmt.Errorf("T2-FP: verified answer differs at n=%d", n))
		}
		_, certElems, certTuples := cert.Size()
		outf("   %-4d %12d %12d %12s %12s %10s\n", n, naiveIters, verifyIters,
			tn.Round(time.Microsecond), tv.Round(time.Microsecond),
			fmt.Sprintf("%d/%d", certElems, certTuples))
	}
	outln("   shape: naive iterations grow quadratically in n (the n^{kl} effect at")
	outln("   alternation depth 2); the verifier replays the guessed certificate in a")
	outln("   constant number of body evaluations here — l·nᵏ in general. The witness")
	outln("   (|cert| = chain sets/tuples) is polynomial — here the guessed gfp is ∅,")
	outln("   the smallest possible post-fixpoint. ✓")
	outln()
}

// shrinkingNuMu is νS.(∃succ ∈ S ∧ µT.((P∧S) ∨ ∃pred ∈ T)) applied at x.
func shrinkingNuMu() logic.Query {
	hasSuccInS := logic.Exists(logic.And(logic.R("E", "x", "y"),
		logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x")), "y")
	innerBody := logic.Or(
		logic.And(logic.R("P", "x"), logic.R("S", "x")),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("T", "x")), "x")), "z"))
	inner := logic.Lfp("T", []logic.Var{"x"}, innerBody, "x")
	outer := logic.Gfp("S", []logic.Var{"x"}, logic.And(hasSuccInS, inner), "x")
	return logic.MustQuery([]logic.Var{"x"}, outer)
}

func alternating(d int) logic.Query {
	step := func(rel string, inner logic.Formula) logic.Formula {
		return logic.Or(inner,
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R(rel, "x")), "x")), "z"))
	}
	f := logic.Formula(logic.R("P", "x"))
	op := logic.LFP
	for i := 1; i <= d; i++ {
		rel := fmt.Sprintf("S%d", i)
		body := step(rel, f)
		if op == logic.GFP {
			body = logic.And(step(rel, f), logic.Or(logic.R(rel, "x"), logic.True))
		}
		f = logic.Fix{Op: op, Rel: rel, Vars: []logic.Var{"x"}, Body: body, Args: []logic.Var{"x"}}
		if op == logic.LFP {
			op = logic.GFP
		} else {
			op = logic.LFP
		}
	}
	return logic.MustQuery([]logic.Var{"x"}, f)
}

// ---- §3.2 addendum: IFPᵏ ----

func t2ifp() {
	header("T2-IFP", "§3.2: IFPᵏ — FP-equivalent in power, but Thm 3.5 does not apply")
	// Inflationary reachability equals the lfp version tuple for tuple; the
	// certificate prover must refuse the ifp form (its best known bound is
	// the PSPACE bound inherited from PFPᵏ).
	body := logic.Or(
		logic.R("P", "x"),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))
	lfpQ := logic.MustQuery([]logic.Var{"u"}, logic.Lfp("S", []logic.Var{"x"}, body, "u"))
	ifpQ := logic.MustQuery([]logic.Var{"u"}, logic.Ifp("S", []logic.Var{"x"}, body, "u"))
	sizes := []int{8, 16, 32}
	if *quick {
		sizes = []int{8, 16}
	}
	outf("   %-4s %12s %12s %8s\n", "n", "lfp", "ifp", "agree")
	for _, n := range sizes {
		db := workload.LineGraph(n)
		var a1, a2 interface{ Len() int }
		tl := timeIt(func() {
			a, err := eval.BottomUp(lfpQ, db)
			die(err)
			a1 = a
		})
		ti := timeIt(func() {
			a, err := eval.BottomUp(ifpQ, db)
			die(err)
			a2 = a
		})
		agree := a1.Len() == a2.Len()
		if !agree {
			die(fmt.Errorf("T2-IFP: ifp and lfp disagree at n=%d", n))
		}
		outf("   %-4d %12s %12s %8v\n", n,
			tl.Round(time.Microsecond), ti.Round(time.Microsecond), agree)
	}
	if _, _, err := eval.FindCertificate(ifpQ, workload.LineGraph(8)); err == nil {
		die(fmt.Errorf("T2-IFP: certificate prover accepted an ifp query"))
	}
	outln("   shape: ifp tracks lfp on positive bodies; the Theorem 3.5 prover")
	outln("   correctly refuses IFP (the paper's open gap, end of §3.2). ✓")
	outln()
}

// ---- Table 2, row ESO (Lemma 3.6 / Cor 3.7) ----

func t2eso() {
	header("T2-ESO", "Cor 3.7: naive enumeration 2^(n^a) vs Lemma 3.6 reduction + grounding + SAT")
	db := workload.LineGraph(2)
	arities := []int{2, 3, 4, 6, 8}
	if *quick {
		arities = []int{2, 3, 4}
	}
	outf("   %-6s %12s %12s %10s %10s\n", "arity", "naive", "reduced+SAT", "asserts", "cnfvars")
	for _, a := range arities {
		f := esoQuery(a)
		naiveRan := a <= 4
		var tn time.Duration
		var naiveAns bool
		if naiveRan {
			tn = timeIt(func() {
				h, err := eval.NaiveHolds(f, db)
				die(err)
				naiveAns = h
			})
		}
		var st *eso.Stats
		var redAns bool
		tr := timeIt(func() {
			h, _, s, err := eso.Holds(f, db, nil)
			die(err)
			st = s
			redAns = h
		})
		ns := "skipped"
		if naiveRan {
			ns = tn.Round(time.Microsecond).String()
			if naiveAns != redAns {
				die(fmt.Errorf("T2-ESO: engines disagree at arity %d", a))
			}
		}
		outf("   %-6d %12s %12s %10d %10d\n", a, ns,
			tr.Round(time.Microsecond), st.Assertions, st.CNFVars)
	}
	outln("   shape: naive explodes by arity 4 (2^16 candidates); the reduction stays")
	outln("   polynomial and reaches arities the naive algorithm cannot. ✓")
	outln()
}

func esoQuery(a int) logic.Formula {
	args1 := make([]logic.Var, a)
	args2 := make([]logic.Var, a)
	for i := range args1 {
		args1[i] = "x"
		args2[i] = "y"
		if i%2 == 1 {
			args1[i] = "y"
			args2[i] = "x"
		}
	}
	return logic.SOExists(
		logic.And(
			logic.Exists(logic.R("S", args1...), "x", "y"),
			logic.Forall(logic.Implies(logic.R("S", args2...), logic.R("E", "x", "y")), "x", "y")),
		logic.RelVar{Name: "S", Arity: a})
}

// ---- Table 2, row PFP (Thm 3.8) ----

func t2pfp() {
	header("T2-PFP", "Thm 3.8: PSPACE evaluation; hash vs Brent (constant-memory) cycle detection")
	grow := logic.Or(
		logic.R("S", "x"),
		logic.Or(logic.R("P", "x"),
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")))
	q := logic.MustQuery([]logic.Var{"u"}, logic.Pfp("S", []logic.Var{"x"}, grow, "u"))
	sizes := []int{8, 16, 32}
	if *quick {
		sizes = []int{8, 16}
	}
	outf("   %-4s %12s %12s %12s %12s\n", "n", "hash", "hash-iters", "brent", "brent-iters")
	for _, n := range sizes {
		db := workload.LineGraph(n)
		var hi, bi int64
		var a1, a2 interface{ Len() int }
		th := timeIt(func() {
			a, st, err := eval.BottomUpStats(q, db, &eval.Options{PFPCycle: eval.CycleHash})
			die(err)
			hi = st.FixIterations
			a1 = a
		})
		tb := timeIt(func() {
			a, st, err := eval.BottomUpStats(q, db, &eval.Options{PFPCycle: eval.CycleBrent})
			die(err)
			bi = st.FixIterations
			a2 = a
		})
		if a1.Len() != a2.Len() {
			die(fmt.Errorf("T2-PFP: cycle modes disagree at n=%d", n))
		}
		outf("   %-4d %12s %12d %12s %12d\n", n,
			th.Round(time.Microsecond), hi, tb.Round(time.Microsecond), bi)
	}
	// The binary counter: a width-2 PFP run of length 2ⁿ over an ordered
	// n-element domain — the canonical witness that PFP runs are
	// exponentially long in the data.
	counter := counterQuery()
	counterSizes := []int{6, 8, 10, 12}
	if *quick {
		counterSizes = []int{6, 8, 10}
	}
	outf("   binary counter (divergent, limit ∅):\n")
	outf("   %-4s %12s %12s\n", "n", "stages", "time")
	for _, n := range counterSizes {
		b := database.NewBuilder()
		for i := 0; i < n; i++ {
			b.Domain(i)
		}
		base, err := b.Build()
		die(err)
		odb, err := base.WithOrder()
		die(err)
		var stages int64
		tc := timeIt(func() {
			ans, st, err := eval.BottomUpStats(counter, odb, nil)
			die(err)
			if ans.Len() != 0 {
				die(fmt.Errorf("T2-PFP: counter limit not empty"))
			}
			stages = st.FixIterations
		})
		outf("   %-4d %12d %12s\n", n, stages, tc.Round(time.Microsecond))
	}
	outln("   shape: both modes agree; Brent pays ~3× stages for O(1) live")
	outln("   relations; the counter's stage count doubles with each added element")
	outln("   (2ⁿ — exponentially long runs at polynomial space). ✓")
	outln()
}

// counterQuery is the width-2 binary-increment PFP query (see
// internal/eval/counter_test.go for the derivation).
func counterQuery() logic.Query {
	body := logic.Or(
		logic.And(
			logic.Neg(logic.R("S", "x")),
			logic.Forall(logic.Implies(logic.R(database.OrderLess, "y", "x"),
				logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x")), "y")),
		logic.And(
			logic.R("S", "x"),
			logic.Exists(logic.And(logic.R(database.OrderLess, "y", "x"),
				logic.Neg(logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x"))), "y")))
	return logic.MustQuery([]logic.Var{"x"}, logic.Pfp("S", []logic.Var{"x"}, body, "x"))
}

// ---- Table 3, row FO (Thm 4.1 / Cor 4.3 / Thm 4.4) ----

func t3fo() {
	header("T3-FO", "expression complexity at fixed B: one-pass stack evaluation, linear in |e|")
	db := boolexpr.FixedDatabase()
	ev, err := grammar.NewWordEvaluator(db, []logic.Var{"x"})
	die(err)
	sizes := []int{8, 32, 128, 512}
	if *quick {
		sizes = []int{8, 32, 128}
	}
	r := rand.New(rand.NewSource(99))
	// Warm up the evaluator so the first row isn't skewed by one-time costs.
	if warm, err := grammar.Compile(logic.Exists(logic.R("P", "x"), "x")); err == nil {
		_, _ = ev.Eval(warm)
	}
	outf("   %-8s %12s %14s\n", "|word|", "stack-pass", "ns/token")
	for _, depthTarget := range sizes {
		// Build a BFVP instance of roughly the target size and compile it.
		var f prop.Formula = prop.Const(true)
		for prop.Size(f) < depthTarget {
			f = prop.And{L: f, R: prop.Or{L: prop.Const(r.Intn(2) == 0), R: prop.Not{F: prop.Const(r.Intn(2) == 0)}}}
		}
		fo, err := boolexpr.ToFO(f)
		die(err)
		word, err := grammar.Compile(fo)
		die(err)
		want, err := boolexpr.Eval(f)
		die(err)
		var got bool
		reps := 50
		t := timeIt(func() {
			for i := 0; i < reps; i++ {
				d, err := ev.Eval(word)
				die(err)
				got = !d.IsEmpty()
			}
		}) / time.Duration(reps)
		if got != want {
			die(fmt.Errorf("T3-FO: stack pass computed %v, want %v", got, want))
		}
		outf("   %-8d %12s %14.1f\n", len(word), t.Round(time.Microsecond),
			float64(t.Nanoseconds())/float64(len(word)))
	}
	outln("   shape: ns/token is flat — evaluation is linear in the expression,")
	outln("   independent of nesting (ALOGTIME's laptop-scale shadow). Thm 4.4's BFVP")
	outln("   instances embed and evaluate correctly. ✓")
	outln()
}

// ---- Table 3, row FP ----

func t3fp() {
	header("T3-FP", "expression complexity of FPᵏ: fixed B, growing alternating formula")
	// Fixed 6-node database; the alternating formula family grows with d.
	// The naive column is the n^{kl} regime in the *expression* parameter;
	// verification stays flat (the certificate does the guessing).
	db := workload.LineGraph(6)
	depths := []int{1, 2, 3} // depth 4 puts the naive column past minutes
	if *quick {
		depths = []int{1, 2}
	}
	outf("   %-6s %8s %12s %12s\n", "depth", "|e|", "naive", "verify")
	for _, d := range depths {
		q := deepShrinking(d)
		var tn, tv time.Duration
		var ans1, ans2 interface{ Len() int }
		tn = timeIt(func() {
			a, _, err := eval.BottomUpStats(q, db, nil)
			die(err)
			ans1 = a
		})
		cert, _, err := eval.FindCertificate(q, db)
		die(err)
		tv = timeIt(func() {
			res, err := eval.VerifyCertificate(q, db, cert)
			die(err)
			ans2 = res.Answer
		})
		if ans1.Len() != ans2.Len() {
			die(fmt.Errorf("T3-FP: verified answer differs at depth %d", d))
		}
		outf("   %-6d %8d %12s %12s\n", d, logic.Size(q.Body),
			tn.Round(time.Microsecond), tv.Round(time.Microsecond))
	}
	outln("   shape: over the fixed database, naive cost grows rapidly with the")
	outln("   alternation depth of the expression while verification stays flat —")
	outln("   the NP∩co-NP expression-complexity row of Table 3. ✓")
	outln()
}

// deepShrinking nests the shrinking νµ pattern d times: ν over µ over ν …,
// every level dependent on the one above, so the alternation is real.
func deepShrinking(d int) logic.Query {
	hasSuccIn := func(rel string) logic.Formula {
		return logic.Exists(logic.And(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.Equal("x", "y"), logic.R(rel, "x")), "x")), "y")
	}
	predStep := func(rel string) logic.Formula {
		return logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R(rel, "x")), "x")), "z")
	}
	// Innermost: µT₀. (P ∧ outer) ∨ pred-step(T₀), where outer is the name
	// of the enclosing ν — the dependency that makes the alternation real.
	// Odd levels are ν (passing their own name down), even levels µ
	// (depending on the ν directly above them).
	var build func(level int, outer string) logic.Formula
	build = func(level int, outer string) logic.Formula {
		if level == 0 {
			return logic.Lfp("T0", []logic.Var{"x"},
				logic.Or(logic.And(logic.R("P", "x"), logic.R(outer, "x")), predStep("T0")), "x")
		}
		if level%2 == 1 {
			rel := fmt.Sprintf("S%d", level)
			return logic.Gfp(rel, []logic.Var{"x"},
				logic.And(hasSuccIn(rel), build(level-1, rel)), "x")
		}
		rel := fmt.Sprintf("T%d", level)
		return logic.Lfp(rel, []logic.Var{"x"},
			logic.Or(logic.And(logic.R("P", "x"), logic.R(outer, "x")),
				logic.Or(predStep(rel), build(level-1, outer))), "x")
	}
	// d counts ν levels: build to 2d−1 so the outermost is a ν.
	return logic.MustQuery([]logic.Var{"x"}, build(2*d-1, ""))
}

// ---- Table 3, row ESO (Thm 4.5) ----

func t3eso() {
	header("T3-ESO", "Thm 4.5: SAT reduces to ESO⁰ over a fixed B; cost tracks the SAT solver")
	db := boolexpr.FixedDatabase()
	sizes := []int{8, 16, 24}
	if *quick {
		sizes = []int{8, 16}
	}
	outf("   %-6s %12s %12s %8s\n", "vars", "reduction", "directSAT", "agree")
	for _, vars := range sizes {
		r := rand.New(rand.NewSource(int64(vars)))
		agree := true
		var tr, td time.Duration
		for trial := 0; trial < 5; trial++ {
			f := prop.Random3CNF(r, vars, 4*vars)
			sentence := prop.ToESO(f)
			var got, want bool
			tr += timeIt(func() {
				h, _, _, err := eso.Holds(sentence, db, nil)
				die(err)
				got = h
			})
			td += timeIt(func() {
				h, err := prop.Satisfiable(f)
				die(err)
				want = h
			})
			if got != want {
				agree = false
			}
		}
		outf("   %-6d %12s %12s %8v\n", vars,
			(tr / 5).Round(time.Microsecond), (td / 5).Round(time.Microsecond), agree)
		if !agree {
			die(fmt.Errorf("T3-ESO: reduction disagreed"))
		}
	}
	outln("   shape: the reduction is linear-size and its cost tracks SAT. ✓")
	outln()
}

// ---- Table 3, row PFP (Thm 4.6) ----

func t3pfp() {
	header("T3-PFP", "Thm 4.6: QBF reduces to PFP² over B₀ = ({0,1}; P={0})")
	db := qbf.FixedDatabase()
	sizes := []int{2, 4, 6, 8}
	if *quick {
		sizes = []int{2, 4, 6}
	}
	outf("   %-4s %8s %12s %12s %8s\n", "l", "|query|", "reduction", "direct", "agree")
	for _, l := range sizes {
		r := rand.New(rand.NewSource(int64(l)))
		agree := true
		var tr, td time.Duration
		var size int
		for trial := 0; trial < 3; trial++ {
			in := qbf.Random(r, l, 3)
			q, err := qbf.ToPFP(in)
			die(err)
			size = logic.Size(q.Body)
			var got, want bool
			tr += timeIt(func() {
				ans, err := eval.BottomUp(q, db)
				die(err)
				got = ans.Len() > 0
			})
			td += timeIt(func() {
				w, err := in.Solve()
				die(err)
				want = w
			})
			if got != want {
				agree = false
			}
		}
		outf("   %-4d %8d %12s %12s %8v\n", l, size,
			(tr / 3).Round(time.Microsecond), (td / 3).Round(time.Microsecond), agree)
		if !agree {
			die(fmt.Errorf("T3-PFP: reduction disagreed"))
		}
	}
	outln("   shape: query size linear in l, evaluation exponential in l over the")
	outln("   fixed two-element database (PSPACE-hardness in action). ✓")
	outln()
}

// ---- Application: µ-calculus (§1) ----

func appMu() {
	header("APP-MU", "µ-calculus ⊂ FP²: model checking direct / via FP² / certified")
	f := mucalc.InfinitelyOften(mucalc.Prop{Name: "p"})
	sizes := []int{8, 16, 32}
	if *quick {
		sizes = []int{8, 16}
	}
	outf("   %-4s %12s %12s %12s %8s\n", "n", "direct", "viaFP2", "certified", "agree")
	for _, n := range sizes {
		k := workload.RandomKripke(int64(n), n, 3)
		var s1, s2, s3 interface{ Count() int }
		t1 := timeIt(func() {
			s, err := mucalc.Check(k, f)
			die(err)
			s1 = s
		})
		t2 := timeIt(func() {
			s, err := mucalc.CheckViaFP2(k, f)
			die(err)
			s2 = s
		})
		t3 := timeIt(func() {
			s, _, err := mucalc.CheckCertified(k, f)
			die(err)
			s3 = s
		})
		agree := s1.Count() == s2.Count() && s1.Count() == s3.Count()
		outf("   %-4d %12s %12s %12s %8v\n", n,
			t1.Round(time.Microsecond), t2.Round(time.Microsecond), t3.Round(time.Microsecond), agree)
		if !agree {
			die(fmt.Errorf("APP-MU: model checkers disagree at n=%d", n))
		}
	}
	outln("   shape: the alternation-depth-2 property checks identically through all")
	outln("   three routes; the FP² translation has width 2. ✓")
	outln()
}

// ---- Application: CTL (extension over [CES86]) ----

func appCTL() {
	header("APP-CTL", "CTL ⊂ alternation-free Lµ ⊂ FP²: three checkers agree; Monotone admits it")
	spec := mucalc.AU{
		L: mucalc.CTLLit{Value: true},
		R: mucalc.CTLOr{L: mucalc.CTLProp{Name: "p"}, R: mucalc.AG_{F: mucalc.CTLProp{Name: "q"}}},
	}
	sizes := []int{8, 16, 32}
	if *quick {
		sizes = []int{8, 16}
	}
	outf("   %-4s %12s %12s %12s %8s\n", "n", "CTL direct", "µ-calculus", "FP²", "agree")
	for _, n := range sizes {
		k := workload.RandomKripke(int64(n)+7, n, 3)
		var s1, s2, s3 interface{ Count() int }
		t1 := timeIt(func() {
			s, err := mucalc.CheckCTL(k, spec)
			die(err)
			s1 = s
		})
		mu, err := mucalc.CTLToMu(spec)
		die(err)
		t2 := timeIt(func() {
			s, err := mucalc.Check(k, mu)
			die(err)
			s2 = s
		})
		t3 := timeIt(func() {
			s, err := mucalc.CheckViaFP2(k, mu)
			die(err)
			s3 = s
		})
		agree := s1.Count() == s2.Count() && s1.Count() == s3.Count()
		if !agree {
			die(fmt.Errorf("APP-CTL: checkers disagree at n=%d", n))
		}
		outf("   %-4d %12s %12s %12s %8v\n", n,
			t1.Round(time.Microsecond), t2.Round(time.Microsecond), t3.Round(time.Microsecond), agree)
	}
	if d := logic.DependentAlternationDepth(mustFP2(spec)); d > 1 {
		die(fmt.Errorf("APP-CTL: translation not dependently alternation-free"))
	}
	outln("   shape: the CTL property checks identically through direct semantics,")
	outln("   its µ-calculus translation, and FP²; its dependent alternation depth")
	outln("   is 1, so the warm-start Monotone evaluator applies. ✓")
	outln()
}

func mustFP2(spec mucalc.CTL) logic.Formula {
	mu, err := mucalc.CTLToMu(spec)
	die(err)
	f, err := mucalc.ToFP2(mu)
	die(err)
	return f
}

// ---- Optimization: intermediate-result minimization (§1/§5) ----

func optJoins() {
	header("OPT", "§1 employees query: 10-ary naive product vs arity-≤4 join-tree plan")
	q := &queryopt.CQ{
		Head: []logic.Var{"e", "se", "ss"},
		Atoms: []queryopt.Atom{
			{Rel: "EMP", Vars: []logic.Var{"e", "d"}},
			{Rel: "MGR", Vars: []logic.Var{"d", "m"}},
			{Rel: "SCY", Vars: []logic.Var{"m", "s"}},
			{Rel: "SAL", Vars: []logic.Var{"e", "se"}},
			{Rel: "SAL2", Vars: []logic.Var{"s", "ss"}},
		},
	}
	sizes := []int{4, 8, 16}
	if *quick {
		sizes = []int{4, 8}
	}
	outf("   %-4s %12s %10s %12s %10s\n", "ne", "naive", "max-arity", "yannakakis", "max-arity")
	for _, ne := range sizes {
		db := workload.Corporate(int64(ne), ne)
		var nst, yst *queryopt.Stats
		var a1, a2 interface{ Len() int }
		tn := timeIt(func() {
			ans, st, err := queryopt.EvalNaive(q, db)
			die(err)
			nst = st
			a1 = ans
		})
		ty := timeIt(func() {
			ans, st, err := queryopt.EvalYannakakis(q, db)
			die(err)
			yst = st
			a2 = ans
		})
		if a1.Len() != a2.Len() {
			die(fmt.Errorf("OPT: plans disagree at ne=%d", ne))
		}
		outf("   %-4d %12s %10d %12s %10d\n", ne,
			tn.Round(time.Microsecond), nst.MaxIntermediateArity,
			ty.Round(time.Microsecond), yst.MaxIntermediateArity)
	}
	// Variable minimization (§5): the same query rewritten into bounded-
	// variable FO and evaluated bottom-up.
	minimized, width, err := queryopt.MinimizeWidth(q)
	die(err)
	direct, err := q.ToFO()
	die(err)
	db := workload.Corporate(4, 8)
	ansMin, minStats, err := eval.BottomUpStats(minimized, db, nil)
	die(err)
	ansYan, _, err := queryopt.EvalYannakakis(q, db)
	die(err)
	if ansMin.Len() != ansYan.Len() {
		die(fmt.Errorf("OPT: minimized FO form disagrees with Yannakakis"))
	}
	outf("   variable minimization: direct FO width %d → minimized width %d;\n", direct.Width(), width)
	outf("   bottom-up max intermediate arity %d, answers agree. ✓\n", minStats.MaxIntermediateArity)
	outln("   shape: naive time explodes with the 10-ary product; the acyclic plan")
	outln("   stays at arity ≤ 4 with near-linear cost. ✓")
	outln()
}
