package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/metrics"
)

// ScrapeRecord is one metric sample scraped from a bvqd /metrics endpoint,
// flattened into the same JSON-Lines shape as the benchmark records so a
// single jq pipeline can join "what the benchmark measured" with "what the
// daemon observed" (cache hit ratios, coalescing rate, shed rate) for one
// load run.
type ScrapeRecord struct {
	Metric string            `json:"metric"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// runScrape fetches url (a bvqd /metrics endpoint), validates the
// exposition format with the same parser the server's tests use, and
// prints one ScrapeRecord per sample.
func runScrape(url string) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		die(fmt.Errorf("scraping %s: %w", url, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		die(fmt.Errorf("scraping %s: status %s", url, resp.Status))
	}
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		die(fmt.Errorf("scraping %s: invalid exposition format: %w", url, err))
	}
	enc := json.NewEncoder(os.Stdout)
	for _, fam := range fams {
		for _, s := range fam.Samples {
			rec := ScrapeRecord{Metric: s.Name, Type: fam.Type, Value: s.Value}
			if len(s.Labels) > 0 {
				rec.Labels = s.Labels
			}
			if err := enc.Encode(rec); err != nil {
				die(err)
			}
		}
	}
}
