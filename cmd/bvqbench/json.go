package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/mucalc"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/workload"
)

// Record is one machine-readable benchmark measurement: a (workload, engine,
// size) cell with its timing and the engine's work counters. Output is one
// JSON object per line (JSON Lines), so downstream tooling can stream-filter
// with jq without loading the whole run.
type Record struct {
	Bench   string  `json:"bench"`             // workload id: tc-lfp, reach-lfp, mu-fp2, pfp-grow, sparse-*, churn-tc, stream-2hop
	Engine  string  `json:"engine"`            // bottomup, compiled, monotone
	Backend string  `json:"backend,omitempty"` // compiled-engine relation backend (dense, sparse, auto)
	Mode    string  `json:"mode,omitempty"`    // churn benches: recompute or maintain; stream benches: materialize, stream-*
	Query   string  `json:"query"`             // concrete query text
	DB      string  `json:"db"`                // database family
	N       int     `json:"n"`                 // domain size
	Limit   int     `json:"limit,omitempty"`   // stream-limit benches: the LIMIT-k window
	Reps    int     `json:"reps"`              // timed repetitions averaged over
	NsPerOp float64 `json:"ns_per_op"`
	Answer  int     `json:"answer_tuples"`
	// PeakHeapBytes is the HeapAlloc high-water mark observed while one
	// untimed evaluation ran (sampled at 1ms, after a GC baseline), and
	// AllocBytes the TotalAlloc delta of that run — the memory story behind
	// the n^k wall, measured rather than asserted.
	PeakHeapBytes uint64     `json:"peak_heap_bytes"`
	AllocBytes    uint64     `json:"alloc_bytes"`
	Stats         *statsJSON `json:"stats,omitempty"`
}

// statsJSON mirrors eval.Stats with snake_case keys. nodes_reused and
// delta_tuples are reported by the compiled engine only (hoisted plan nodes
// served without recomputation; tuples pushed through semi-naive deltas) and
// stay zero elsewhere.
type statsJSON struct {
	SubformulaEvals       int64 `json:"subformula_evals"`
	FixIterations         int64 `json:"fix_iterations"`
	MaxIntermediateArity  int64 `json:"max_intermediate_arity"`
	MaxIntermediateTuples int64 `json:"max_intermediate_tuples"`
	NodesReused           int64 `json:"nodes_reused"`
	DeltaTuples           int64 `json:"delta_tuples"`
	TuplesTouched         int64 `json:"tuples_touched"`
	RepSwitches           int64 `json:"rep_switches"`
	AcyclicFastPath       int64 `json:"acyclic_fast_path"`
	MaintainedFromDelta   int64 `json:"maintained_from_delta,omitempty"`
}

func toStatsJSON(st *eval.Stats) *statsJSON {
	if st == nil {
		return nil
	}
	return &statsJSON{
		SubformulaEvals:       st.SubformulaEvals,
		FixIterations:         st.FixIterations,
		MaxIntermediateArity:  st.MaxIntermediateArity,
		MaxIntermediateTuples: st.MaxIntermediateTuples,
		NodesReused:           st.NodesReused,
		DeltaTuples:           st.DeltaTuples,
		TuplesTouched:         st.TuplesTouched,
		RepSwitches:           st.RepSwitches,
		AcyclicFastPath:       st.AcyclicFastPath,
		MaintainedFromDelta:   st.MaintainedFromDelta,
	}
}

// Meta is the leading line of a -json run: when and on what the numbers
// were taken, so archived benchmark files (scripts/bench_trajectory.sh's
// BENCH_<pr>.json) are comparable across machines and revisions without
// out-of-band notes.
type Meta struct {
	Meta      bool   `json:"meta"` // always true; discriminates from Record lines
	Date      string `json:"date"` // RFC 3339 UTC
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"` // VCS commit, "-dirty" suffixed
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Quick     bool   `json:"quick"`
}

func metaRecord(quick bool) Meta {
	m := Meta{
		Meta:      true,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			m.Revision = rev + dirty
		}
	}
	return m
}

// runJSON executes the engine-comparison workloads and prints one Record per
// line, after a leading Meta line. It replaces the human-readable sweeps
// entirely: -json is for CI and EXPERIMENTS.md regeneration, where parsing
// prose tables is the enemy.
func runJSON(quick bool) {
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(metaRecord(quick)); err != nil {
		die(err)
	}
	for _, r := range jsonRecords(quick) {
		if err := enc.Encode(r); err != nil {
			die(err)
		}
	}
}

func jsonRecords(quick bool) []Record {
	var recs []Record
	recs = append(recs, benchTCLFP(quick)...)
	recs = append(recs, benchReachLFP(quick)...)
	recs = append(recs, benchMuFP2(quick)...)
	recs = append(recs, benchPFPGrow(quick)...)
	recs = append(recs, benchSparse(quick)...)
	recs = append(recs, benchChurn(quick)...)
	return recs
}

// measure times fn until it has run at least three times and consumed
// ~200ms, then returns the mean ns/op with the rep count.
func measure(fn func()) (float64, int) {
	const minReps = 3
	const budget = 200 * time.Millisecond
	var reps int
	start := time.Now()
	for reps < minReps || time.Since(start) < budget {
		fn()
		reps++
		if reps >= 1000 {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps), reps
}

// measureMem runs fn once, untimed, and returns its HeapAlloc high-water
// mark (sampled at 1ms over a GC'd baseline) and TotalAlloc delta. The
// sampler goroutine never runs during the timed reps, so memory and latency
// measurements do not perturb each other.
func measureMem(fn func()) (peak, alloc uint64) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	peak = before.HeapAlloc
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > atomic.LoadUint64(&peak) {
					atomic.StoreUint64(&peak, ms.HeapAlloc)
				}
			}
		}
	}()
	fn()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > atomic.LoadUint64(&peak) {
		atomic.StoreUint64(&peak, after.HeapAlloc)
	}
	close(done)
	<-sampled
	p := atomic.LoadUint64(&peak)
	if p > before.HeapAlloc {
		p -= before.HeapAlloc
	} else {
		p = 0
	}
	return p, after.TotalAlloc - before.TotalAlloc
}

// engineRecords runs q on db under each engine, checks that all answers
// agree, and returns one Record per engine.
func engineRecords(bench, dbName string, n int, q logic.Query, db *database.Database, engines []string) []Record {
	var recs []Record
	baseline := -1
	for _, name := range engines {
		var tuples int
		var st *eval.Stats
		nsPerOp, reps := measure(func() {
			a, s, err := evalByName(name, q, db)
			die(err)
			tuples = a.Len()
			st = s
		})
		if baseline < 0 {
			baseline = tuples
		} else if tuples != baseline {
			die(fmt.Errorf("%s n=%d: engine %s disagrees (%d tuples, want %d)", bench, n, name, tuples, baseline))
		}
		rec := Record{Bench: bench, Engine: name, Query: q.String(), DB: dbName, N: n,
			Reps: reps, NsPerOp: nsPerOp, Answer: tuples, Stats: toStatsJSON(st)}
		rec.PeakHeapBytes, rec.AllocBytes = measureMem(func() {
			_, _, err := evalByName(name, q, db)
			die(err)
		})
		recs = append(recs, rec)
	}
	return recs
}

func evalByName(name string, q logic.Query, db *database.Database) (*relation.Set, *eval.Stats, error) {
	switch name {
	case "bottomup":
		return eval.BottomUpStats(q, db, nil)
	case "compiled":
		return eval.CompiledStats(q, db, nil)
	case "monotone":
		return eval.MonotoneStats(q, db, nil)
	}
	return nil, nil, fmt.Errorf("bvqbench: unknown engine %q", name)
}

// tcQuery is binary transitive closure T(x,y) ≡ E(x,y) ∨ ∃z(E(x,z) ∧
// T(z,y)) — the canonical semi-naive showcase: the delta frontier is one
// diagonal band per stage on a line graph, while full re-evaluation redoes
// the n³-point join every stage.
func tcQuery() logic.Query {
	return logic.MustQuery([]logic.Var{"x", "y"},
		logic.Lfp("T", []logic.Var{"x", "y"},
			logic.Or(logic.R("E", "x", "y"),
				logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
			"x", "y"))
}

// reachQuery is single-source reachability as a width-3 LFP with a unary
// recursion relation — deltas still apply, but hoisting and delta savings
// are smaller relative to the per-stage dense projection.
func reachQuery() logic.Query {
	return logic.MustQuery([]logic.Var{"u"},
		logic.Lfp("S", []logic.Var{"x"},
			logic.Or(logic.R("P", "x"),
				logic.Exists(logic.And(logic.R("E", "z", "x"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")), "u"))
}

func benchTCLFP(quick bool) []Record {
	sizes := []int{32, 64, 96}
	if quick {
		sizes = []int{16, 32}
	}
	q := tcQuery()
	var recs []Record
	for _, n := range sizes {
		db := workload.LineGraph(n)
		// Monotone materializes sparse n²-tuple sets per stage and falls
		// behind by an order of magnitude here; bottomup is the meaningful
		// dense baseline.
		recs = append(recs, engineRecords("tc-lfp", "line", n, q, db,
			[]string{"bottomup", "compiled"})...)
	}
	return recs
}

func benchReachLFP(quick bool) []Record {
	sizes := []int{32, 64, 128}
	if quick {
		sizes = []int{16, 32}
	}
	q := reachQuery()
	var recs []Record
	for _, n := range sizes {
		db := workload.LineGraph(n)
		recs = append(recs, engineRecords("reach-lfp", "line", n, q, db,
			[]string{"bottomup", "compiled", "monotone"})...)
	}
	return recs
}

func benchMuFP2(quick bool) []Record {
	sizes := []int{16, 32, 64}
	if quick {
		sizes = []int{8, 16}
	}
	f := mucalc.InfinitelyOften(mucalc.Prop{Name: "p"})
	body, err := mucalc.ToFP2(f)
	die(err)
	q := logic.MustQuery([]logic.Var{"x"}, body)
	var recs []Record
	for _, n := range sizes {
		k := workload.RandomKripke(int64(n), n, 3)
		db, err := k.ToDatabase("p")
		die(err)
		// InfinitelyOften alternates ν/µ (depth 2): Monotone refuses it, so
		// the comparison is bottomup vs compiled dirty-node re-evaluation.
		recs = append(recs, engineRecords("mu-fp2", "kripke", n, q, db,
			[]string{"bottomup", "compiled"})...)
	}
	return recs
}

// backendRecords runs q on db through the compiled engine under each listed
// backend, cross-checks answers between the backends that ran, and returns
// one Record per backend with timing, memory and sparse-work statistics.
func backendRecords(bench, dbName string, n int, q logic.Query, db *database.Database, backends []eval.Backend) []Record {
	var recs []Record
	baseline := -1
	for _, b := range backends {
		opts := &eval.Options{Backend: b}
		var tuples int
		var st *eval.Stats
		nsPerOp, reps := measure(func() {
			a, s, err := eval.CompiledStats(q, db, opts)
			die(err)
			tuples = a.Len()
			st = s
		})
		if baseline < 0 {
			baseline = tuples
		} else if tuples != baseline {
			die(fmt.Errorf("%s n=%d: backend %s disagrees (%d tuples, want %d)", bench, n, b, tuples, baseline))
		}
		rec := Record{Bench: bench, Engine: "compiled", Backend: b.String(), Query: q.String(),
			DB: dbName, N: n, Reps: reps, NsPerOp: nsPerOp, Answer: tuples, Stats: toStatsJSON(st)}
		rec.PeakHeapBytes, rec.AllocBytes = measureMem(func() {
			_, _, err := eval.CompiledStats(q, db, opts)
			die(err)
		})
		recs = append(recs, rec)
	}
	return recs
}

// twoHopQuery is the acyclic path CQ (x, y) ← ∃z. E(x,z) ∧ E(z,y): the
// Yannakakis fast-path workload.
func twoHopQuery() logic.Query {
	return logic.MustQuery([]logic.Var{"x", "y"},
		logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("E", "z", "y")), "z"))
}

// benchSparse is the n^k-wall sweep: the k=3 transitive-closure fixpoint and
// the acyclic two-hop join over forests whose closures stay small however
// large the domain grows. Dense runs only where its n³-bit space is modest
// (n ≤ 256); the sparse backend continues to n = 10,000 — 10¹² dense bits,
// two orders of magnitude past relation.MaxDenseBits — where the dense
// column is structurally absent rather than merely slow.
func benchSparse(quick bool) []Record {
	sizes := []int{64, 256, 2000, 10000}
	if quick {
		sizes = []int{64, 256, 1000}
	}
	const denseMax = 256
	tc := tcQuery()
	hop := twoHopQuery()
	var recs []Record
	for _, n := range sizes {
		db := workload.ForestGraph(n, 8)
		backends := []eval.Backend{eval.BackendSparse}
		if n <= denseMax {
			backends = []eval.Backend{eval.BackendDense, eval.BackendSparse}
		}
		recs = append(recs, backendRecords("sparse-tc", "forest", n, tc, db, backends)...)
		recs = append(recs, backendRecords("sparse-2hop", "forest", n, hop, db, backends)...)
	}
	return recs
}

// benchChurn is the incremental-maintenance story: transitive closure on a
// line graph, then a one-edge insert (a self-loop, whose effective TC delta
// is a single tuple). "recompute" evaluates the updated database from
// scratch; "maintain" restarts the fixpoint from the pre-update stage
// relation (eval.EvalPlanMaintained) — the bvqd update path's eager
// maintenance. Both modes must produce the same answer; the ratio of their
// ns_per_op is the payoff of delta-restart on small deltas.
func benchChurn(quick bool) []Record {
	sizes := []int{64, 96, 128}
	if quick {
		sizes = []int{32, 64}
	}
	q := tcQuery()
	p, err := plan.Compile(q)
	die(err)
	opts := &eval.Options{Backend: eval.BackendDense}
	ctx := context.Background()
	var recs []Record
	for _, n := range sizes {
		db := workload.LineGraph(n)
		_, _, state, err := eval.EvalPlanCapture(ctx, p, db, opts)
		die(err)
		next, delta, err := db.Apply([]database.Update{
			{Relation: "E", Insert: []relation.Tuple{{n / 2, n / 2}}},
		})
		die(err)
		if !eval.CanMaintain(p, delta) {
			die(fmt.Errorf("churn-tc n=%d: insert-only TC delta should be maintainable", n))
		}
		var want string
		for _, mode := range []string{"recompute", "maintain"} {
			var tuples int
			var st *eval.Stats
			nsPerOp, reps := measure(func() {
				var a *relation.Set
				var err error
				if mode == "maintain" {
					a, st, _, err = eval.EvalPlanMaintained(ctx, p, next, opts, state)
				} else {
					a, st, err = eval.EvalPlanContext(ctx, p, next, opts)
				}
				die(err)
				tuples = a.Len()
				if want == "" {
					want = a.String()
				} else if got := a.String(); got != want {
					die(fmt.Errorf("churn-tc n=%d: %s answer diverges from recompute", n, mode))
				}
			})
			rec := Record{Bench: "churn-tc", Engine: "compiled", Backend: "dense", Mode: mode,
				Query: q.String(), DB: "line", N: n, Reps: reps, NsPerOp: nsPerOp,
				Answer: tuples, Stats: toStatsJSON(st)}
			rec.PeakHeapBytes, rec.AllocBytes = measureMem(func() {
				if mode == "maintain" {
					_, _, _, err := eval.EvalPlanMaintained(ctx, p, next, opts, state)
					die(err)
				} else {
					_, _, err := eval.EvalPlanContext(ctx, p, next, opts)
					die(err)
				}
			})
			recs = append(recs, rec)
		}
	}
	return recs
}

func benchPFPGrow(quick bool) []Record {
	sizes := []int{32, 64, 128}
	if quick {
		sizes = []int{16, 32}
	}
	q := logic.MustQuery([]logic.Var{"u"},
		logic.Pfp("S", []logic.Var{"x"},
			logic.Or(logic.R("S", "x"), logic.Or(logic.R("P", "x"),
				logic.Exists(logic.And(logic.R("E", "z", "x"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))), "u"))
	var recs []Record
	for _, n := range sizes {
		db := workload.LineGraph(n)
		recs = append(recs, engineRecords("pfp-grow", "line", n, q, db,
			[]string{"bottomup", "compiled"})...)
	}
	return recs
}
