package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/workload"
)

// runStreamBench is the -stream mode: the streaming-enumeration story on a
// large-answer acyclic query, as JSON Lines records. The scenario is the
// two-hop join over a random sparse digraph with expected out-degree 8 —
// its answer has ~n·64 tuples, so at n = 10,000 the materialized route
// builds a sixty-thousand-tuple set before the first tuple can leave,
// while the streaming acyclic route emits tuple one right after the
// Yannakakis semijoin reduction (O(edges) work, O(stage relations) memory).
//
// Three streamed modes ride next to the materialized baseline:
//
//	materialize   full EvalPlanContext — ns/op is also its time-to-first-
//	              tuple, since nothing leaves before the set is complete
//	stream-ttft   EvalPlanEnum + one Next: time-to-first-tuple
//	stream-limit  EvalPlanEnum + Next×k (LIMIT-k pushdown): the whole
//	              request at answer-independent cost and memory
//	stream-drain  EvalPlanEnum drained to exhaustion — throughput check,
//	              cross-checked tuple-for-tuple count against materialize
//
// EXPERIMENTS.md quotes a run of this mode; `make bench-stream` runs it.
func runStreamBench(quick bool) {
	enc := json.NewEncoder(os.Stdout)
	for _, r := range streamRecords(quick) {
		if err := enc.Encode(r); err != nil {
			die(err)
		}
	}
}

func streamRecords(quick bool) []Record {
	sizes := []int{2000, 10000}
	if quick {
		sizes = []int{500, 2000}
	}
	const limitK = 64
	// degree 10 puts ~n·100 tuples in the answer over only ~n·10 edges: the
	// materialized route pays for the answer, the streamed route for the
	// edges, so the gap between them is the point of the benchmark.
	const degree = 10.0
	q := twoHopQuery()
	p, err := plan.Compile(q)
	die(err)
	opts := &eval.Options{Backend: eval.BackendSparse}
	ctx := context.Background()
	var recs []Record
	for _, n := range sizes {
		db := workload.SparseDigraph(int64(n), n, degree)

		// Materialized baseline: the full answer set must exist before the
		// first tuple can be delivered, so ns/op doubles as its TTFT.
		var full int
		var mst *eval.Stats
		ns, reps := measure(func() {
			a, s, err := eval.EvalPlanContext(ctx, p, db, opts)
			die(err)
			full = a.Len()
			mst = s
		})
		rec := Record{Bench: "stream-2hop", Engine: "compiled", Backend: "sparse",
			Mode: "materialize", Query: q.String(), DB: "sparse-digraph", N: n,
			Reps: reps, NsPerOp: ns, Answer: full, Stats: toStatsJSON(mst)}
		rec.PeakHeapBytes, rec.AllocBytes = measureMem(func() {
			_, _, err := eval.EvalPlanContext(ctx, p, db, opts)
			die(err)
		})
		recs = append(recs, rec)

		// Time-to-first-tuple through the enumeration API: enumerator
		// construction (the semijoin reduction) plus one Next.
		ns, reps = measure(func() {
			en, _, err := eval.EvalPlanEnum(ctx, p, db, opts)
			die(err)
			if _, ok := en.Next(); !ok {
				die(fmt.Errorf("stream-2hop n=%d: empty stream", n))
			}
			en.Close()
		})
		rec = Record{Bench: "stream-2hop", Engine: "compiled", Backend: "sparse",
			Mode: "stream-ttft", Query: q.String(), DB: "sparse-digraph", N: n,
			Reps: reps, NsPerOp: ns, Answer: 1}
		rec.PeakHeapBytes, rec.AllocBytes = measureMem(func() {
			en, _, err := eval.EvalPlanEnum(ctx, p, db, opts)
			die(err)
			en.Next()
			en.Close()
		})
		recs = append(recs, rec)

		// LIMIT-k pushdown: the extraction stops after k tuples, so both the
		// latency and the peak heap are independent of the answer size.
		drainK := func() {
			en, _, err := eval.EvalPlanEnum(ctx, p, db, opts)
			die(err)
			for got := 0; got < limitK; got++ {
				if _, ok := en.Next(); !ok {
					die(fmt.Errorf("stream-2hop n=%d: stream dried up before k=%d", n, limitK))
				}
			}
			en.Close()
		}
		ns, reps = measure(drainK)
		rec = Record{Bench: "stream-2hop", Engine: "compiled", Backend: "sparse",
			Mode: "stream-limit", Limit: limitK, Query: q.String(), DB: "sparse-digraph",
			N: n, Reps: reps, NsPerOp: ns, Answer: limitK}
		rec.PeakHeapBytes, rec.AllocBytes = measureMem(drainK)
		recs = append(recs, rec)

		// Full drain: throughput of the streaming route, and the count
		// cross-check that keeps this benchmark honest.
		var streamed int
		var dst *eval.Stats
		ns, reps = measure(func() {
			en, s, err := eval.EvalPlanEnum(ctx, p, db, opts)
			die(err)
			streamed = 0
			for {
				if _, ok := en.Next(); !ok {
					break
				}
				streamed++
			}
			die(en.Err())
			en.Close()
			dst = s
		})
		if streamed != full {
			die(fmt.Errorf("stream-2hop n=%d: streamed %d tuples, materialized %d", n, streamed, full))
		}
		rec = Record{Bench: "stream-2hop", Engine: "compiled", Backend: "sparse",
			Mode: "stream-drain", Query: q.String(), DB: "sparse-digraph", N: n,
			Reps: reps, NsPerOp: ns, Answer: streamed, Stats: toStatsJSON(dst)}
		rec.PeakHeapBytes, rec.AllocBytes = measureMem(func() {
			en, _, err := eval.EvalPlanEnum(ctx, p, db, opts)
			die(err)
			for {
				if _, ok := en.Next(); !ok {
					break
				}
			}
			en.Close()
		})
		recs = append(recs, rec)
	}
	return recs
}
