// Command bvq evaluates a bounded-variable query against a database.
//
// Usage:
//
//	bvq -db employees.db -query '(x, y). exists z. E(x, z) & E(z, y)' \
//	    [-engine bottomup|naive|algebra|monotone|eso|certified|compiled] [-k 3] [-stats] \
//	    [-stream] [-limit N] [-offset N]
//
// The database file uses the textual format of bvq.ParseDatabase:
//
//	domain = {0, 1, 2}
//	E/2 = {(0, 1), (1, 2)}
//
// The answer is printed as a tuple list in raw domain values. With -stats,
// evaluation statistics (intermediate arities and sizes, fixpoint
// iterations) are printed to stderr. With -k, the query is rejected unless
// its width is at most k — the Lᵏ membership check.
//
// With -stream, the answer is produced through the streaming enumeration
// API: tuples print as they decode, and with -limit the evaluation stops
// extracting after the window instead of materializing the full answer —
// on the compiled engine's acyclic fast path, without ever building the
// product. -limit/-offset also window the answer without -stream (the
// window is cut after materialization there).
//
// With -explain, the query is compiled and executed on the compiled engine
// and the annotated plan DAG is printed instead of the answer: per node the
// operator, evaluation count and cumulative wall time; per fixpoint binder
// the stages run and delta tuples; plus the density decision and the
// backend route the evaluator picked (dense, sparse, hybrid, acyclic).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/relation"
)

func main() {
	var (
		dbPath  = flag.String("db", "", "database file (textual format); required")
		query   = flag.String("query", "", "query text '(x, y). formula'; required unless -query-file")
		qFile   = flag.String("query-file", "", "file containing the query")
		engine  = flag.String("engine", "bottomup", "engine: bottomup, naive, algebra, monotone, eso, certified, compiled")
		k       = flag.Int("k", 0, "reject queries of width > k (0: no bound)")
		stats   = flag.Bool("stats", false, "print evaluation statistics to stderr")
		showIdx = flag.Bool("indices", false, "print domain indices instead of raw values")
		stream  = flag.Bool("stream", false, "stream tuples through the enumeration API (limit stops extraction early)")
		limit   = flag.Int("limit", 0, "print at most N answer tuples (0: all)")
		offset  = flag.Int("offset", 0, "skip the first N answer tuples")
		explain = flag.Bool("explain", false, "run on the compiled engine and print the annotated plan tree instead of the answer")
	)
	flag.Parse()
	if *explain {
		if err := runExplain(*dbPath, *query, *qFile, *k, *stream, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "bvq:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*dbPath, *query, *qFile, *engine, *k, *stats, *showIdx, *stream, *limit, *offset, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bvq:", err)
		os.Exit(1)
	}
}

func run(dbPath, query, qFile, engineName string, k int, stats, showIdx, stream bool, limit, offset int, stdout, stderr io.Writer) error {
	if dbPath == "" {
		return fmt.Errorf("missing -db")
	}
	if limit < 0 || offset < 0 {
		return fmt.Errorf("-limit and -offset must be ≥ 0")
	}
	db, q, err := loadInputs(dbPath, query, qFile)
	if err != nil {
		return err
	}
	eng, err := bvq.EngineByName(engineName)
	if err != nil {
		return err
	}
	var opts *bvq.Options
	if k > 0 {
		opts = &bvq.Options{MaxWidth: k}
	}
	if stream {
		return runStream(q, db, eng, opts, stats, showIdx, limit, offset, stdout, stderr)
	}
	ans, st, err := bvq.EvalStats(q, db, eng, opts)
	if err != nil {
		return err
	}
	if stats {
		printStats(stderr, eng, q, db, st)
	}
	if q.Arity() == 0 {
		verdict := "false"
		if ans.Len() > 0 {
			verdict = "true"
		}
		return emit(stdout, verdict)
	}
	tuples := ans.Tuples()
	if offset > 0 {
		if offset >= len(tuples) {
			tuples = nil
		} else {
			tuples = tuples[offset:]
		}
	}
	if limit > 0 && limit < len(tuples) {
		tuples = tuples[:limit]
	}
	for _, t := range tuples {
		if err := emit(stdout, renderLine(t, db, showIdx)); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "%d tuple(s)\n", ans.Len())
	return nil
}

// loadInputs reads and parses the database file and the query text (inline
// or from -query-file).
func loadInputs(dbPath, query, qFile string) (*bvq.Database, bvq.Query, error) {
	text, err := os.ReadFile(dbPath)
	if err != nil {
		return nil, bvq.Query{}, err
	}
	db, err := bvq.ParseDatabase(string(text))
	if err != nil {
		return nil, bvq.Query{}, err
	}
	if query == "" && qFile != "" {
		qt, err := os.ReadFile(qFile)
		if err != nil {
			return nil, bvq.Query{}, err
		}
		query = strings.TrimSpace(string(qt))
	}
	if query == "" {
		return nil, bvq.Query{}, fmt.Errorf("missing -query or -query-file")
	}
	q, err := bvq.ParseQuery(query)
	if err != nil {
		return nil, bvq.Query{}, err
	}
	return db, q, nil
}

// runExplain compiles the query, executes it on the compiled engine with a
// per-node profile and a fixpoint tracer attached, and prints the annotated
// plan tree — the CLI twin of the server's "explain": true request mode.
func runExplain(dbPath, query, qFile string, k int, stream bool, stdout, stderr io.Writer) error {
	if stream {
		return fmt.Errorf("-explain and -stream are mutually exclusive")
	}
	db, q, err := loadInputs(dbPath, query, qFile)
	if err != nil {
		return err
	}
	p, err := plan.Compile(q)
	if err != nil {
		return err
	}
	var mu sync.Mutex
	binders := map[int]*struct{ stages, delta, ns int64 }{}
	opts := &eval.Options{
		MaxWidth: k,
		Profile:  eval.NewPlanProfile(p.NumNodes()),
		Tracer: func(ev eval.TraceEvent) {
			if ev.Binder < 0 {
				return
			}
			mu.Lock()
			a := binders[ev.Binder]
			if a == nil {
				a = &struct{ stages, delta, ns int64 }{}
				binders[ev.Binder] = a
			}
			a.stages++
			if ev.Delta < 0 {
				a.delta -= int64(ev.Delta)
			} else {
				a.delta += int64(ev.Delta)
			}
			a.ns += ev.Elapsed.Nanoseconds()
			mu.Unlock()
		},
	}
	den, route := eval.ExplainRoute(p, db, opts)
	ans, st, err := eval.EvalPlanContext(context.Background(), p, db, opts)
	if err != nil {
		return err
	}
	ex := p.Explain(den)
	if st != nil && st.AcyclicFastPath > 0 {
		route = "acyclic"
	}
	ex.Route = route
	ex.AttachProfile(opts.Profile.Evals, opts.Profile.NS)
	for b, a := range binders {
		ex.AttachBinderStages(b, a.stages, a.delta, a.ns)
	}
	ex.Render(stdout)
	fmt.Fprintf(stderr, "%d tuple(s)\n", ans.Len())
	return nil
}

// runStream prints the answer through the enumeration API: constant memory
// in the answer size, tuples printed as they decode, and LIMIT stopping the
// extraction (on the acyclic fast path, the evaluation) early.
func runStream(q bvq.Query, db *bvq.Database, eng bvq.Engine, opts *bvq.Options, stats, showIdx bool, limit, offset int, stdout, stderr io.Writer) error {
	en, st, err := bvq.EvalEnumContext(context.Background(), q, db, eng, opts)
	if err != nil {
		return err
	}
	defer en.Close()
	if q.Arity() == 0 {
		verdict := "false"
		if _, ok := en.Next(); ok {
			verdict = "true"
		}
		if err := en.Err(); err != nil {
			return err
		}
		return emit(stdout, verdict)
	}
	cnt, cntOK := en.Count()
	skipped := 0
	if offset > 0 {
		skipped = en.Skip(offset)
	}
	printed := 0
	exhausted := true
	for limit == 0 || printed < limit {
		t, ok := en.Next()
		if !ok {
			break
		}
		if err := emit(stdout, renderLine(t, db, showIdx)); err != nil {
			return err
		}
		printed++
		if limit > 0 && printed == limit {
			exhausted = false
		}
	}
	if err := en.Err(); err != nil {
		return err
	}
	if !cntOK && exhausted {
		cnt, cntOK = skipped+printed, true
	}
	en.Close() // fold acyclic-route stats before printing them
	if stats {
		printStats(stderr, eng, q, db, st)
	}
	if cntOK {
		fmt.Fprintf(stderr, "%d tuple(s), %d streamed, %d skipped\n", cnt, printed, skipped)
	} else {
		fmt.Fprintf(stderr, "%d streamed, %d skipped\n", printed, skipped)
	}
	return nil
}

func printStats(stderr io.Writer, eng bvq.Engine, q bvq.Query, db *bvq.Database, st *bvq.Stats) {
	fmt.Fprintf(stderr, "engine=%s width=%d domain=%d\n", eng, bvq.Width(q), db.Size())
	if st != nil {
		fmt.Fprintf(stderr, "subformula evals=%d fixpoint iterations=%d max intermediate arity=%d max intermediate tuples=%d\n",
			st.SubformulaEvals, st.FixIterations, st.MaxIntermediateArity, st.MaxIntermediateTuples)
	}
}

// emit writes one answer line and surfaces the write error, so a broken
// pipe or full disk fails the run (exit 1) instead of silently truncating
// the answer with exit status 0.
func emit(stdout io.Writer, line string) error {
	if _, err := fmt.Fprintln(stdout, line); err != nil {
		return fmt.Errorf("writing answer: %w", err)
	}
	return nil
}

func renderLine(t relation.Tuple, db *bvq.Database, showIdx bool) string {
	if showIdx {
		return t.String()
	}
	raw := make(relation.Tuple, len(t))
	for i, v := range t {
		raw[i] = db.Value(v)
	}
	return raw.String()
}
