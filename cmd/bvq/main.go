// Command bvq evaluates a bounded-variable query against a database.
//
// Usage:
//
//	bvq -db employees.db -query '(x, y). exists z. E(x, z) & E(z, y)' \
//	    [-engine bottomup|naive|algebra|monotone|eso|certified|compiled] [-k 3] [-stats]
//
// The database file uses the textual format of bvq.ParseDatabase:
//
//	domain = {0, 1, 2}
//	E/2 = {(0, 1), (1, 2)}
//
// The answer is printed as a tuple list in raw domain values. With -stats,
// evaluation statistics (intermediate arities and sizes, fixpoint
// iterations) are printed to stderr. With -k, the query is rejected unless
// its width is at most k — the Lᵏ membership check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/relation"
)

func main() {
	var (
		dbPath  = flag.String("db", "", "database file (textual format); required")
		query   = flag.String("query", "", "query text '(x, y). formula'; required unless -query-file")
		qFile   = flag.String("query-file", "", "file containing the query")
		engine  = flag.String("engine", "bottomup", "engine: bottomup, naive, algebra, monotone, eso, certified, compiled")
		k       = flag.Int("k", 0, "reject queries of width > k (0: no bound)")
		stats   = flag.Bool("stats", false, "print evaluation statistics to stderr")
		showIdx = flag.Bool("indices", false, "print domain indices instead of raw values")
	)
	flag.Parse()
	if err := run(*dbPath, *query, *qFile, *engine, *k, *stats, *showIdx, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bvq:", err)
		os.Exit(1)
	}
}

func run(dbPath, query, qFile, engineName string, k int, stats, showIdx bool, stdout, stderr io.Writer) error {
	if dbPath == "" {
		return fmt.Errorf("missing -db")
	}
	text, err := os.ReadFile(dbPath)
	if err != nil {
		return err
	}
	db, err := bvq.ParseDatabase(string(text))
	if err != nil {
		return err
	}
	if query == "" && qFile != "" {
		qt, err := os.ReadFile(qFile)
		if err != nil {
			return err
		}
		query = strings.TrimSpace(string(qt))
	}
	if query == "" {
		return fmt.Errorf("missing -query or -query-file")
	}
	q, err := bvq.ParseQuery(query)
	if err != nil {
		return err
	}
	eng, err := bvq.EngineByName(engineName)
	if err != nil {
		return err
	}
	var opts *bvq.Options
	if k > 0 {
		opts = &bvq.Options{MaxWidth: k}
	}
	ans, st, err := bvq.EvalStats(q, db, eng, opts)
	if err != nil {
		return err
	}
	if stats {
		fmt.Fprintf(stderr, "engine=%s width=%d domain=%d\n", eng, bvq.Width(q), db.Size())
		if st != nil {
			fmt.Fprintf(stderr, "subformula evals=%d fixpoint iterations=%d max intermediate arity=%d max intermediate tuples=%d\n",
				st.SubformulaEvals, st.FixIterations, st.MaxIntermediateArity, st.MaxIntermediateTuples)
		}
	}
	if q.Arity() == 0 {
		verdict := "false"
		if ans.Len() > 0 {
			verdict = "true"
		}
		return emit(stdout, verdict)
	}
	tuples := ans.Tuples()
	for _, t := range tuples {
		line := t.String()
		if !showIdx {
			raw := make(relation.Tuple, len(t))
			for i, v := range t {
				raw[i] = db.Value(v)
			}
			line = raw.String()
		}
		if err := emit(stdout, line); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "%d tuple(s)\n", ans.Len())
	return nil
}

// emit writes one answer line and surfaces the write error, so a broken
// pipe or full disk fails the run (exit 1) instead of silently truncating
// the answer with exit status 0.
func emit(stdout io.Writer, line string) error {
	if _, err := fmt.Fprintln(stdout, line); err != nil {
		return fmt.Errorf("writing answer: %w", err)
	}
	return nil
}
