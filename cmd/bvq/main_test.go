package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.db")
	text := `
domain = {10, 20, 30, 40}
E/2 = {(10, 20), (20, 30), (30, 40)}
P/1 = {(10)}
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasicQuery(t *testing.T) {
	db := writeDB(t)
	var out, errw strings.Builder
	err := run(db, "(x, y). exists z. E(x, z) & E(z, y)", "", "bottomup", 0, true, false, false, 0, 0, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "(10, 30)") || !strings.Contains(got, "(20, 40)") {
		t.Fatalf("stdout = %q", got)
	}
	if !strings.Contains(errw.String(), "2 tuple(s)") {
		t.Fatalf("stderr = %q", errw.String())
	}
	if !strings.Contains(errw.String(), "width=3") {
		t.Fatalf("stats missing: %q", errw.String())
	}
}

func TestRunBooleanAndIndices(t *testing.T) {
	db := writeDB(t)
	var out, errw strings.Builder
	if err := run(db, "(). exists x. P(x)", "", "naive", 0, false, false, false, 0, 0, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "true" {
		t.Fatalf("Boolean output = %q", out.String())
	}
	out.Reset()
	if err := run(db, "(x). P(x)", "", "bottomup", 0, false, true, false, 0, 0, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "(0)" { // index of value 10
		t.Fatalf("indices output = %q", out.String())
	}
}

func TestRunQueryFile(t *testing.T) {
	db := writeDB(t)
	qf := filepath.Join(t.TempDir(), "q.txt")
	if err := os.WriteFile(qf, []byte("(x). P(x)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	if err := run(db, "", qf, "bottomup", 0, false, false, false, 0, 0, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(10)") {
		t.Fatalf("stdout = %q", out.String())
	}
}

func TestRunCertifiedEngine(t *testing.T) {
	db := writeDB(t)
	var out, errw strings.Builder
	q := "(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)"
	if err := run(db, q, "", "certified", 0, false, false, false, 0, 0, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "4 tuple(s)") {
		t.Fatalf("stderr = %q", errw.String())
	}
}

func TestRunErrors(t *testing.T) {
	db := writeDB(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing db", func() error {
			var o, e strings.Builder
			return run("", "(x). P(x)", "", "bottomup", 0, false, false, false, 0, 0, &o, &e)
		}},
		{"missing query", func() error {
			var o, e strings.Builder
			return run(db, "", "", "bottomup", 0, false, false, false, 0, 0, &o, &e)
		}},
		{"bad engine", func() error {
			var o, e strings.Builder
			return run(db, "(x). P(x)", "", "warpdrive", 0, false, false, false, 0, 0, &o, &e)
		}},
		{"width bound", func() error {
			var o, e strings.Builder
			return run(db, "(x, y). exists z. E(x, z) & E(z, y)", "", "bottomup", 2, false, false, false, 0, 0, &o, &e)
		}},
		{"bad query", func() error {
			var o, e strings.Builder
			return run(db, "(x). Nope(", "", "bottomup", 0, false, false, false, 0, 0, &o, &e)
		}},
		{"nonexistent db file", func() error {
			var o, e strings.Builder
			return run("/nonexistent/x.db", "(x). P(x)", "", "bottomup", 0, false, false, false, 0, 0, &o, &e)
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// TestRunStream pins the -stream path: same tuples and order as the
// materialized path, -limit/-offset windowing, and the streamed tuple
// accounting on stderr.
func TestRunStream(t *testing.T) {
	db := writeDB(t)
	for _, engine := range []string{"bottomup", "compiled"} {
		var out, errw strings.Builder
		if err := run(db, "(x, y). exists z. E(x, z) & E(z, y)", "", engine, 0, false, false, true, 0, 0, &out, &errw); err != nil {
			t.Fatal(err)
		}
		if got := out.String(); !strings.Contains(got, "(10, 30)") || !strings.Contains(got, "(20, 40)") {
			t.Fatalf("%s stream stdout = %q", engine, got)
		}
		if !strings.Contains(errw.String(), "2 tuple(s), 2 streamed, 0 skipped") {
			t.Fatalf("%s stream stderr = %q", engine, errw.String())
		}
	}
	// Window: skip the first tuple, take one.
	var out, errw strings.Builder
	if err := run(db, "(x, y). exists z. E(x, z) & E(z, y)", "", "compiled", 0, false, false, true, 1, 1, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "(20, 40)" {
		t.Fatalf("windowed stream stdout = %q", got)
	}
	// Boolean stream.
	out.Reset()
	if err := run(db, "(). exists x. P(x)", "", "compiled", 0, false, false, true, 0, 0, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "true" {
		t.Fatalf("boolean stream = %q", out.String())
	}
}

// failWriter simulates a broken pipe / full disk after n successful writes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("simulated write failure")
	}
	w.n--
	return len(p), nil
}

// TestRunPropagatesWriteErrors is the regression test for the silent-
// truncation bug: a failed stdout write used to be discarded, so a run whose
// answer never reached the user still exited 0. run must now surface the
// write error (and main turns any error into exit status 1).
func TestRunPropagatesWriteErrors(t *testing.T) {
	db := writeDB(t)
	var errw strings.Builder
	cases := []struct {
		name  string
		query string
	}{
		{"tuple answer", "(x, y). exists z. E(x, z) & E(z, y)"},
		{"boolean answer", "(). exists x. P(x)"},
	}
	for _, c := range cases {
		err := run(db, c.query, "", "bottomup", 0, false, false, false, 0, 0, &failWriter{}, &errw)
		if err == nil {
			t.Errorf("%s: write failure not propagated", c.name)
		} else if !strings.Contains(err.Error(), "simulated write failure") {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
	// Failure mid-answer (first tuple written, second fails) must also fail.
	if err := run(db, "(x, y). exists z. E(x, z) & E(z, y)", "", "bottomup", 0, false, false, false, 0, 0, &failWriter{n: 1}, &errw); err == nil {
		t.Error("mid-answer write failure not propagated")
	}
}
