// Command bvqrouter fronts a fleet of bvqd replicas: it consistent-hashes
// (database, query) across the fleet so repeated queries hit warm replica
// caches, forwards /query in both JSON and NDJSON streaming form, fans
// /db/{name}/update out to every healthy replica, scatter-gathers /stats
// and /metrics into fleet aggregates, and turns the single-node admission
// contract into fleet behavior: 429+Retry-After sheds park the shedding
// replica and retry the next one, slow primaries are hedged for idempotent
// reads, and failed replicas are evicted from the ring by health probes
// (and readmitted when they recover).
//
// Usage:
//
//	bvqrouter -replica http://127.0.0.1:8081 -replica http://127.0.0.1:8082 \
//	          [-addr :8080] [-vnodes 128] [-retries 1] [-max-retry-wait 3s] \
//	          [-hedge-delay 0] [-health-interval 1s] [-health-failures 2]
//
// Endpoints mirror bvqd (see OPERATIONS.md, "Running a fleet"):
//
//	POST /query             routed to the key's replica, with retry/backoff and hedging
//	POST /db/{name}/update  fanned out to every healthy replica
//	GET  /stats             fleet aggregate + per-replica stats + router counters
//	GET  /metrics           bvqrouter_* families + summed bvqd_* families
//	GET  /healthz           200 while at least one replica serves
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/router"
)

type replicaFlags []string

func (f *replicaFlags) String() string { return fmt.Sprint([]string(*f)) }

func (f *replicaFlags) Set(s string) error {
	if s == "" {
		return fmt.Errorf("empty replica URL")
	}
	*f = append(*f, s)
	return nil
}

func main() {
	var replicas replicaFlags
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		vnodes         = flag.Int("vnodes", router.DefaultVnodes, "ring points per replica")
		retries        = flag.Int("retries", 1, "extra passes over the preference list when every replica sheds")
		maxRetryWait   = flag.Duration("max-retry-wait", 3*time.Second, "longest a request waits for a shed replica's Retry-After before relaying the 429 (negative: never wait)")
		hedgeDelay     = flag.Duration("hedge-delay", 0, "hedge idempotent JSON reads to a second replica after this delay (0: disabled)")
		healthInterval = flag.Duration("health-interval", time.Second, "replica /healthz probe period (0: probes disabled)")
		healthFailures = flag.Int("health-failures", 2, "consecutive probe failures before evicting a replica")
	)
	flag.Var(&replicas, "replica", "bvqd replica base URL (repeatable); at least one required")
	flag.Parse()

	rt, err := router.New(router.Config{
		Replicas:       replicas,
		Vnodes:         *vnodes,
		Retries:        *retries,
		MaxRetryWait:   *maxRetryWait,
		HedgeDelay:     *hedgeDelay,
		HealthInterval: *healthInterval,
		HealthFailures: *healthFailures,
		Logger:         slog.New(slog.NewJSONHandler(os.Stderr, nil)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvqrouter:", err)
		os.Exit(1)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("bvqrouter listening on %s, %d replicas", *addr, len(replicas))
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "bvqrouter:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "bvqrouter: shutdown:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "bvqrouter:", err)
		os.Exit(1)
	}
}
