package bvq

import (
	"testing"
)

func testDB(t *testing.T) *Database {
	t.Helper()
	db, err := ParseDatabase(`
domain = {0, 1, 2, 3}
E/2 = {(0, 1), (1, 2), (2, 3)}
P/1 = {(0)}
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFacadeEvalEngines(t *testing.T) {
	db := testDB(t)
	q, err := ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	if err != nil {
		t.Fatal(err)
	}
	if Width(q) != 3 {
		t.Fatalf("Width = %d", Width(q))
	}
	var answers []*Relation
	for _, e := range []Engine{EngineBottomUp, EngineNaive, EngineAlgebra, EngineMonotone} {
		ans, err := Eval(q, db, e)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		answers = append(answers, ans)
	}
	for i := 1; i < len(answers); i++ {
		if !answers[0].Equal(answers[i]) {
			t.Fatalf("engines disagree: %v vs %v", answers[0], answers[i])
		}
	}
	if answers[0].Len() != 2 {
		t.Fatalf("two-hop answer = %v", answers[0])
	}
}

func TestFacadeESOEngine(t *testing.T) {
	db := testDB(t)
	q, err := ParseQuery("(). exists2 C/1. forall x. forall y. E(x,y) -> !(C(x) <-> C(y))")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Eval(q, db, EngineESO)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Fatal("line graph should be 2-colorable")
	}
}

func TestFacadeFixpointAndCertificates(t *testing.T) {
	db := testDB(t)
	q, err := ParseQuery("(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Eval(q, db, EngineBottomUp)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 4 {
		t.Fatalf("reachability from P: %v", ans)
	}
	cert, proved, err := FindCertificate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !proved.Equal(ans) {
		t.Fatal("prover answer differs")
	}
	verified, err := VerifyCertificate(q, db, cert)
	if err != nil {
		t.Fatal(err)
	}
	if !verified.Equal(ans) {
		t.Fatal("verified answer differs")
	}
	nq, err := NegateQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	nans, err := Eval(nq, db, EngineBottomUp)
	if err != nil {
		t.Fatal(err)
	}
	if nans.Len() != 0 {
		t.Fatalf("complement should be empty, got %v", nans)
	}
	// The certified engine bundles the prover/verifier round trip.
	cans, err := Eval(q, db, EngineCertified)
	if err != nil {
		t.Fatal(err)
	}
	if !cans.Equal(ans) {
		t.Fatalf("certified engine differs: %v vs %v", cans, ans)
	}
}

func TestFacadeHoldsAndEngineNames(t *testing.T) {
	db := testDB(t)
	f, err := ParseFormula("exists x. P(x)")
	if err != nil {
		t.Fatal(err)
	}
	h, err := Holds(f, db, EngineBottomUp)
	if err != nil {
		t.Fatal(err)
	}
	if !h {
		t.Fatal("∃x P(x) should hold")
	}
	for _, name := range []string{"bottomup", "naive", "algebra", "monotone", "eso", "certified"} {
		if _, err := EngineByName(name); err != nil {
			t.Errorf("EngineByName(%q): %v", name, err)
		}
	}
	if _, err := EngineByName("nope"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestFacadeWidthBoundOption(t *testing.T) {
	db := testDB(t)
	q, err := ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EvalStats(q, db, EngineBottomUp, &Options{MaxWidth: 2}); err == nil {
		t.Fatal("width bound not enforced")
	}
}
