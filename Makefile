GO ?= go

.PHONY: all build test vet race bench sweep examples cover clean check

all: vet test build

# check is the pre-merge gate: static analysis plus the full suite under the
# race detector (the parallel PFP sweep makes -race meaningful).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	gofmt -l . && $(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the EXPERIMENTS.md sweeps (about a minute).
sweep:
	$(GO) run ./cmd/bvqbench

sweep-quick:
	$(GO) run ./cmd/bvqbench -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/employees
	$(GO) run ./examples/reachability
	$(GO) run ./examples/modelcheck
	$(GO) run ./examples/qbfhardness
	$(GO) run ./examples/expression

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt
