GO ?= go

.PHONY: all build test vet docs race bench bench-json bench-sparse bench-stream bench-smoke smoke-stream fleet-smoke sweep examples cover clean check serve

all: vet test build

# check is the pre-merge gate: static analysis, the documentation checks,
# the full suite under the race detector (the parallel PFP sweep, the
# compiled engine's wave scheduler, the bvqd single-flight path and the
# update/maintenance path make -race meaningful), the differential
# harnesses — including the randomized churn differential, which drives
# hundreds of mutation steps through delta-restart maintenance, and the
# streaming differential, which checks ~200 random formulas enumerate
# byte-identically to their materialized answers across backends and
# engines — the compiled scheduler called out by name so a regression
# there is visible by name, the metrics-documentation lint so the
# OPERATIONS.md family reference cannot drift from what the server
# registers, a single-iteration benchmark smoke pass so the benchmarks
# themselves cannot rot, a curl-level NDJSON smoke against a live bvqd so
# the streaming wire format cannot rot either, and a fleet smoke that
# boots three bvqd replicas behind bvqrouter, checks routed answers stay
# byte-identical to direct ones, drives a short bvqload run (non-zero
# routed queries, zero 5xx), and kills a replica mid-load to prove
# eviction + retry keeps failures off the client.
check: docs
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/server/ ./internal/cache/ ./internal/metrics/
	$(GO) test -race -count=1 -run 'TestDifferential|TestCompiled|TestChurn|TestMaintain|TestUpdate|TestEnum|TestStream' ./internal/eval/ ./internal/server/
	$(GO) test -count=1 -run 'TestSparseLargeDomainTC' ./internal/eval/
	$(GO) test -count=1 -run 'TestMetricsDocumented' ./internal/server/
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/eval/ ./internal/relation/ ./internal/bitset/
	./scripts/stream_smoke.sh
	./scripts/fleet_smoke.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files need formatting"; exit 1; }
	$(GO) vet ./...

# docs verifies the documentation surface: formatting, vet, the runnable
# godoc examples, and a `go doc` smoke pass over the public entry points.
docs:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files need formatting"; exit 1; }
	$(GO) vet ./...
	$(GO) test -run Example .
	@$(GO) doc . >/dev/null
	@$(GO) doc . EvalContext >/dev/null
	@$(GO) doc . FindCertificate >/dev/null
	@$(GO) doc . ModelCheck >/dev/null
	@$(GO) doc ./internal/server >/dev/null
	@$(GO) doc ./internal/cache >/dev/null
	@$(GO) doc ./internal/metrics >/dev/null
	@echo "docs: gofmt clean, examples pass, go doc smoke ok"

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json emits machine-readable engine-comparison records (JSON Lines):
# one object per (workload, engine, size) cell with ns/op and the engine's
# work counters. EXPERIMENTS.md quotes a run of this target.
bench-json:
	$(GO) run ./cmd/bvqbench -json

# bench-sparse is the sparse-backend smoke slice of bench-json: the quick
# sweeps include the n^k-wall scenarios (sparse-tc, sparse-2hop up to
# n=1000); the full n=10,000 run with its 1 GiB peak-memory assertion lives
# in `make check` as TestSparseLargeDomainTC.
bench-sparse:
	$(GO) run ./cmd/bvqbench -json -quick | grep '"bench":"sparse-'

# bench-stream emits the streaming-enumeration records (JSON Lines):
# time-to-first-tuple, LIMIT-k latency and peak heap for the streamed
# acyclic route next to the materialized baseline, on the large-answer
# two-hop scenario up to n = 10,000. EXPERIMENTS.md quotes a run.
bench-stream:
	$(GO) run ./cmd/bvqbench -stream

# bench-smoke runs every benchmark exactly once — a compile-and-run
# existence check, not a measurement.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# smoke-stream boots bvqd on the example graph and curls a streamed /query,
# checking the NDJSON wire format end to end (scripts/stream_smoke.sh).
smoke-stream:
	./scripts/stream_smoke.sh

# fleet-smoke boots three bvqd replicas behind bvqrouter and checks the
# fleet contract: byte-identical routed answers (JSON and stream rows), a
# short bvqload run with non-zero routed queries and zero 5xx, a capacity
# point (1 vs 3 replicas), and a mid-load replica kill that the router
# absorbs with eviction + retries (scripts/fleet_smoke.sh).
fleet-smoke:
	./scripts/fleet_smoke.sh

# Regenerate the EXPERIMENTS.md sweeps (about a minute).
sweep:
	$(GO) run ./cmd/bvqbench

sweep-quick:
	$(GO) run ./cmd/bvqbench -quick

# serve runs the bvqd query daemon on the bundled example databases
# (OPERATIONS.md documents the endpoints; -ordered enables the fixpoint
# queries that need the built-in linear order).
serve:
	$(GO) run ./cmd/bvqd -ordered \
		-db graph=examples/data/graph.db \
		-db corp=examples/data/corporate.db

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/employees
	$(GO) run ./examples/reachability
	$(GO) run ./examples/modelcheck
	$(GO) run ./examples/qbfhardness
	$(GO) run ./examples/expression
	$(GO) run ./examples/largegraph
	$(GO) run ./examples/server

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt
