#!/usr/bin/env bash
# stream_smoke.sh — curl-level NDJSON smoke test against a live bvqd.
#
# Boots the daemon on the bundled example graph, streams a two-hop query,
# and checks the wire format end to end: the application/x-ndjson content
# type, the header line, one line per answer tuple, the trailer line, the
# full-count contract under limit/offset windowing (count is the FULL
# cardinality, the window only selects which rows are sent), the cached
# re-serve of a stored stream, and the bvqd_streams_total metric.
#
# `make smoke-stream` runs this; `make check` runs it as part of the gate.
set -euo pipefail

PORT="${BVQD_SMOKE_PORT:-18321}"
BASE="http://127.0.0.1:$PORT"
DIR="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d)"
PID=""
trap '[ -n "$PID" ] && kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

fail() {
	echo "stream smoke: $*" >&2
	exit 1
}

go build -o "$TMP/bvqd" "$DIR/cmd/bvqd"
"$TMP/bvqd" -addr "127.0.0.1:$PORT" -db graph="$DIR/examples/data/graph.db" \
	>"$TMP/bvqd.log" 2>&1 &
PID=$!

for _ in $(seq 1 100); do
	curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
	kill -0 "$PID" 2>/dev/null || { cat "$TMP/bvqd.log" >&2; fail "bvqd exited during startup"; }
	sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null || fail "bvqd never became healthy"

# Full stream: header, one row per tuple, trailer whose count equals the rows.
req='{"database":"graph","query":"(x, y). exists z. E(x, z) & E(z, y)","stream":true}'
ctype=$(curl -fsS -o "$TMP/full.ndjson" -w '%{content_type}' \
	-H 'Content-Type: application/json' -d "$req" "$BASE/query")
case "$ctype" in
application/x-ndjson*) ;;
*) fail "content type $ctype, want application/x-ndjson" ;;
esac
head -1 "$TMP/full.ndjson" | grep -q '"request_id"' || fail "first line is not a stream header"
tail -1 "$TMP/full.ndjson" | grep -q '"trailer":true' || fail "last line is not a stream trailer"
lines=$(wc -l <"$TMP/full.ndjson")
rows=$((lines - 2))
[ "$rows" -ge 1 ] || fail "no answer rows in the stream"
full=$(tail -1 "$TMP/full.ndjson" | sed 's/.*"count"://; s/[,}].*//')
[ "$rows" -eq "$full" ] || fail "$rows rows but trailer count $full"

# Windowed stream: limit=1 offset=1 sends exactly one row, reports the
# window in streamed/skipped, keeps count at the FULL cardinality, and —
# because the first stream ran to exhaustion — serves from the result cache.
wreq='{"database":"graph","query":"(x, y). exists z. E(x, z) & E(z, y)","stream":true,"limit":1,"offset":1}'
curl -fsS -H 'Content-Type: application/json' -d "$wreq" "$BASE/query" >"$TMP/win.ndjson"
wlines=$(wc -l <"$TMP/win.ndjson")
[ "$wlines" -eq 3 ] || fail "windowed stream has $wlines lines, want header+row+trailer"
head -1 "$TMP/win.ndjson" | grep -q '"result_cached":true' || fail "windowed stream not served from the result cache"
tail -1 "$TMP/win.ndjson" | grep -q '"streamed":1' || fail "windowed trailer streamed != 1"
tail -1 "$TMP/win.ndjson" | grep -q '"skipped":1' || fail "windowed trailer skipped != 1"
wfull=$(tail -1 "$TMP/win.ndjson" | sed 's/.*"count"://; s/[,}].*//')
[ "$wfull" -eq "$full" ] || fail "windowed count $wfull, want full cardinality $full"

curl -fsS "$BASE/metrics" | grep -q '^bvqd_streams_total' || fail "bvqd_streams_total missing from /metrics"

echo "stream smoke: ok ($rows rows, full count $full, windowed count matches, metrics exposed)"
