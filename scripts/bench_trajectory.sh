#!/bin/sh
# bench_trajectory.sh — snapshot the benchmark suite into a dated,
# revision-stamped JSON-Lines file, so the repo accumulates a performance
# trajectory one file per PR.
#
# Usage: scripts/bench_trajectory.sh <pr-number> [-quick]
#
# Writes BENCH_<pr>.json at the repository root: a leading meta line (date,
# go version, VCS revision, host shape — emitted by bvqbench itself) followed
# by one record per (workload, engine, size) cell. Compare two PRs with e.g.
#
#   jq -s 'map(select(.bench == "sparse-2hop"))' BENCH_8.json BENCH_9.json
set -eu

if [ "${1:-}" = "" ]; then
    echo "usage: $0 <pr-number> [-quick]" >&2
    exit 2
fi
pr=$1
shift

cd "$(dirname "$0")/.."
out="BENCH_${pr}.json"
go run ./cmd/bvqbench -json "$@" >"$out"
lines=$(wc -l <"$out")
echo "wrote $out ($lines lines)" >&2
