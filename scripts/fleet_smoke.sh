#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end smoke test of a bvqrouter fleet.
#
# Boots three bvqd replicas on the bundled example graph behind one
# bvqrouter and checks the fleet contract end to end:
#
#   1. routed answers are byte-identical to a direct replica's, for both
#      JSON bodies and NDJSON stream rows (request_id/elapsed_ms excluded —
#      they legitimately differ per request);
#   2. a short bvqload run through the router completes with non-zero
#      routed queries and zero 5xx responses, and drives update fan-out
#      (churn) plus streamed queries;
#   3. a capacity point for EXPERIMENTS.md: qps/p50/p99 closed-loop
#      against one direct replica vs the routed 3-replica fleet;
#   4. killing the replica that owns the dominant query mid-load yields
#      health-probe eviction, ring rebalance and transparent retries —
#      zero client-visible 5xx.
#
# `make fleet-smoke` runs this; CI runs it after `make check`.
set -euo pipefail

BASE_PORT="${BVQ_FLEET_PORT:-18400}"
DIR="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

fail() {
	echo "fleet smoke: $*" >&2
	for i in 1 2 3; do
		[ -f "$TMP/bvqd$i.log" ] && { echo "--- replica $i log ---" >&2; tail -5 "$TMP/bvqd$i.log" >&2; }
	done
	[ -f "$TMP/router.log" ] && { echo "--- router log ---" >&2; tail -5 "$TMP/router.log" >&2; }
	exit 1
}

# jsonint FIELD FILE — pull an integer field out of bvqload -json output.
jsonint() {
	sed -n "s/.*\"$1\": \(-*[0-9][0-9]*\).*/\1/p" "$2" | head -1
}

# jsonnum FIELD FILE — same for floats.
jsonnum() {
	sed -n "s/.*\"$1\": \(-*[0-9.][0-9.e+-]*\).*/\1/p" "$2" | head -1
}

# normalize — strip the per-request fields from a JSON /query response so
# two responses to the same query compare byte-identically.
normalize() {
	sed 's/"request_id":"[^"]*",*//; s/,*"elapsed_ms":[0-9.e+-]*//; s/,*"trace_id":"[^"]*"//'
}

wait_healthy() {
	for _ in $(seq 1 100); do
		curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	fail "$1 never became healthy"
}

go build -o "$TMP/bvqd" "$DIR/cmd/bvqd"
go build -o "$TMP/bvqrouter" "$DIR/cmd/bvqrouter"
go build -o "$TMP/bvqload" "$DIR/cmd/bvqload"

REPLICAS=()
for i in 1 2 3; do
	port=$((BASE_PORT + i))
	"$TMP/bvqd" -addr "127.0.0.1:$port" -db graph="$DIR/examples/data/graph.db" \
		>"$TMP/bvqd$i.log" 2>&1 &
	PIDS+=($!)
	REPLICAS+=("http://127.0.0.1:$port")
done
for r in "${REPLICAS[@]}"; do wait_healthy "$r"; done

ROUTER="http://127.0.0.1:$BASE_PORT"
"$TMP/bvqrouter" -addr "127.0.0.1:$BASE_PORT" \
	-replica "${REPLICAS[0]}" -replica "${REPLICAS[1]}" -replica "${REPLICAS[2]}" \
	-retries 2 -health-interval 100ms -health-failures 2 \
	>"$TMP/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
wait_healthy "$ROUTER"

# ---- 1. Byte-identity: routed vs direct, JSON and streaming. ----------------
req='{"database":"graph","query":"(x, y). exists z. E(x, z) & E(z, y)"}'
curl -fsS -H 'Content-Type: application/json' -d "$req" "${REPLICAS[0]}/query" | normalize >"$TMP/direct.json"
curl -fsS -H 'Content-Type: application/json' -d "$req" "$ROUTER/query" | normalize >"$TMP/routed.json"
cmp -s "$TMP/direct.json" "$TMP/routed.json" || {
	diff "$TMP/direct.json" "$TMP/routed.json" >&2 || true
	fail "routed JSON answer differs from direct"
}

sreq='{"database":"graph","query":"(x, y). exists z. E(x, z) & E(z, y)","stream":true,"no_cache":true}'
curl -fsS -H 'Content-Type: application/json' -d "$sreq" "${REPLICAS[0]}/query" >"$TMP/direct.ndjson"
curl -fsS -H 'Content-Type: application/json' -d "$sreq" "$ROUTER/query" >"$TMP/routed.ndjson"
sed '1d;$d' "$TMP/direct.ndjson" >"$TMP/direct.rows"
sed '1d;$d' "$TMP/routed.ndjson" >"$TMP/routed.rows"
cmp -s "$TMP/direct.rows" "$TMP/routed.rows" || fail "routed stream rows differ from direct"
[ -s "$TMP/direct.rows" ] || fail "stream produced no rows"
tail -1 "$TMP/routed.ndjson" | grep -q '"trailer":true' || fail "routed stream has no trailer"
tail -1 "$TMP/routed.ndjson" | grep -q '"error"' && fail "routed stream trailer carries an error"
dcount=$(tail -1 "$TMP/direct.ndjson" | sed 's/.*"count"://; s/[,}].*//')
rcount=$(tail -1 "$TMP/routed.ndjson" | sed 's/.*"count"://; s/[,}].*//')
[ "$dcount" = "$rcount" ] || fail "stream counts differ: direct $dcount, routed $rcount"

# ---- 2. Routed load: queries, streams and update fan-out, zero 5xx. ---------
"$TMP/bvqload" -target "$ROUTER" -database graph -duration 3s -workers 4 \
	-churn 0.05 -stream 0.2 -seed 7 -json >"$TMP/load.json"
queries=$(jsonint queries "$TMP/load.json")
updates=$(jsonint updates "$TMP/load.json")
fivexx=$(jsonint server_5xx "$TMP/load.json")
transport=$(jsonint transport_errors "$TMP/load.json")
[ "${queries:-0}" -gt 0 ] || fail "bvqload routed zero queries"
[ "${updates:-0}" -gt 0 ] || fail "bvqload fanned out zero updates"
[ "${fivexx:-1}" -eq 0 ] || fail "bvqload saw $fivexx 5xx responses through the router"
[ "${transport:-1}" -eq 0 ] || fail "bvqload saw $transport transport errors"

# ---- 3. Capacity point: direct single replica vs routed fleet. --------------
"$TMP/bvqload" -target "${REPLICAS[0]}" -database graph -duration 3s -workers 6 \
	-seed 11 -json >"$TMP/cap1.json"
"$TMP/bvqload" -target "$ROUTER" -database graph -duration 3s -workers 6 \
	-seed 11 -json >"$TMP/cap3.json"
echo "capacity (closed loop, 6 workers, mix twohop=3,tc=1,reach=1):"
echo "| setup              | qps   | p50 ms | p99 ms |"
echo "|--------------------|-------|--------|--------|"
printf '| direct, 1 replica  | %s | %s | %s |\n' \
	"$(jsonnum qps "$TMP/cap1.json")" "$(jsonnum p50_ms "$TMP/cap1.json")" "$(jsonnum p99_ms "$TMP/cap1.json")"
printf '| routed, 3 replicas | %s | %s | %s |\n' \
	"$(jsonnum qps "$TMP/cap3.json")" "$(jsonnum p50_ms "$TMP/cap3.json")" "$(jsonnum p99_ms "$TMP/cap3.json")"

# ---- 4. Kill the owner of the dominant query mid-load. ----------------------
owner=$(curl -sS -o /dev/null -D - -H 'Content-Type: application/json' -d "$req" "$ROUTER/query" |
	tr -d '\r' | sed -n 's/^[Xx]-[Bb]vqrouter-[Rr]eplica: //p')
[ -n "$owner" ] || fail "router did not name the serving replica"
owner_pid=""
for i in 0 1 2; do
	[ "${REPLICAS[$i]}" = "$owner" ] && owner_pid="${PIDS[$i]}"
done
[ -n "$owner_pid" ] || fail "owner $owner is not a known replica"

"$TMP/bvqload" -target "$ROUTER" -database graph -duration 4s -workers 4 \
	-seed 13 -json >"$TMP/kill.json" &
LOAD_PID=$!
sleep 1
kill "$owner_pid"
wait "$LOAD_PID" || fail "bvqload failed during the replica kill"

kqueries=$(jsonint queries "$TMP/kill.json")
kfivexx=$(jsonint server_5xx "$TMP/kill.json")
[ "${kqueries:-0}" -gt 0 ] || fail "no queries succeeded across the replica kill"
[ "${kfivexx:-1}" -eq 0 ] || fail "replica kill leaked $kfivexx 5xx responses to the client"

curl -fsS "$ROUTER/healthz" | grep -q '"healthy":2' || fail "router still counts the killed replica healthy"
evictions=$(curl -fsS "$ROUTER/metrics" | awk '$1=="bvqrouter_member_evictions_total"{print $2}')
[ "${evictions:-0}" -ge 1 ] || fail "no ring eviction recorded after the kill"
retries=$(curl -fsS "$ROUTER/metrics" | awk '$1=="bvqrouter_retries_total"{print $2}')
[ "${retries:-0}" -ge 1 ] || fail "no retries recorded after the kill"

echo "fleet smoke: ok (byte-identical answers, $queries routed queries + $updates fan-outs with zero 5xx," \
	"kill survived with $kqueries queries, $evictions eviction(s), $retries retries)"
