// Employees: the paper's §1 motivating example. The query "find employees
// who earn less than their manager's secretary" joins EMP, MGR, SCY and SAL
// (twice). The naive plan takes a 10-ary cross product; a better plan keeps
// every intermediate at arity ≤ 4 — and the acyclic-join machinery
// (GYO + Yannakakis) does that automatically.
package main

import (
	"fmt"
	"log"

	"repro/internal/logic"
	"repro/internal/queryopt"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	for _, ne := range []int{6, 12, 24, 48} {
		db := workload.Corporate(1, ne)
		// answer(e, se, ss) ← EMP(e,d), MGR(d,m), SCY(m,s), SAL(e,se), SAL2(s,ss)
		q := &queryopt.CQ{
			Head: []logic.Var{"e", "se", "ss"},
			Atoms: []queryopt.Atom{
				{Rel: "EMP", Vars: []logic.Var{"e", "d"}},
				{Rel: "MGR", Vars: []logic.Var{"d", "m"}},
				{Rel: "SCY", Vars: []logic.Var{"m", "s"}},
				{Rel: "SAL", Vars: []logic.Var{"e", "se"}},
				{Rel: "SAL2", Vars: []logic.Var{"s", "ss"}},
			},
		}
		if !q.IsAcyclic() {
			log.Fatal("employees query should be acyclic")
		}

		yan, yanStats, err := queryopt.EvalYannakakis(q, db)
		if err != nil {
			log.Fatal(err)
		}
		// The naive plan's 10-ary product grows as ne⁵-ish; past a couple of
		// dozen employees it stops being runnable — which is the point.
		naiveStats := &queryopt.Stats{}
		naiveRan := ne <= 24
		if naiveRan {
			var naive *relation.Set
			naive, naiveStats, err = queryopt.EvalNaive(q, db)
			if err != nil {
				log.Fatal(err)
			}
			if !naive.Equal(yan) {
				log.Fatal("plans disagree")
			}
		}

		// The final selection se < ss is arithmetic, done outside the CQ.
		count := 0
		sel := relation.NewSet(1)
		yan.ForEach(func(t relation.Tuple) {
			if db.Value(t[1]) < db.Value(t[2]) {
				sel.Add(relation.Tuple{t[0]})
			}
		})
		count = sel.Len()

		naiveCol := "     (skipped: too large)"
		if naiveRan {
			naiveCol = fmt.Sprintf("max arity %2d, max tuples %7d",
				naiveStats.MaxIntermediateArity, naiveStats.MaxIntermediateTuples)
		}
		fmt.Printf("employees=%3d  underpaid=%3d | naive: %s | yannakakis: max arity %2d, max tuples %5d\n",
			ne, count, naiveCol,
			yanStats.MaxIntermediateArity, yanStats.MaxIntermediateTuples)
	}
	fmt.Println("\nThe naive plan materializes the paper's 10-ary product; the join-tree")
	fmt.Println("plan never exceeds arity 4 — intermediate-result minimization in action.")
}
