// Expression: the §4 expression-complexity story. Fix a database B; an FOᵏ
// query is then an algebraic expression over the finitely many k-ary
// relations of B. This example builds the Lemma 4.2 parenthesis grammar
// G(B), verifies a membership word against it, and evaluates compiled words
// with the linear one-pass stack evaluator — serially and in parallel (the
// ALOGTIME nod).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/database"
	"repro/internal/grammar"
	"repro/internal/logic"
	"repro/internal/prop"
)

func main() {
	db := boolexpr.FixedDatabase() // ({0,1}; P = {0})
	vars := []logic.Var{"x", "y"}

	// The finite algebra: 2^(n^k) = 2^4 = 16 binary relations over {0,1}.
	alg, err := grammar.NewAlgebra(db, vars)
	if err != nil {
		log.Fatal(err)
	}
	g, err := alg.BuildGrammar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed B: 2 elements; algebra of %d binary relations; grammar G(B) with %d productions\n\n",
		alg.Len(), g.Size())

	// A query as a parenthesis word, and its membership check (φ@r).
	f, err := grammar.Compile(logic.Exists(logic.And(logic.R("P", "x"), logic.Equal("x", "y")), "x"))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := alg.EvalFormula(logic.Exists(logic.And(logic.R("P", "x"), logic.Equal("x", "y")), "x"))
	if err != nil {
		log.Fatal(err)
	}
	word := alg.MembershipWord(f, idx)
	ok, err := g.Recognize(word)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query word: %s\n", grammar.WordString(f))
	fmt.Printf("membership word (φ@r%d) ∈ L(G): %v\n", idx, ok)
	wrong := (idx + 1) % alg.Len()
	ok, _ = g.Recognize(alg.MembershipWord(f, wrong))
	fmt.Printf("with the wrong answer r%d:      %v\n\n", wrong, ok)

	// The stack evaluator: linear in the expression, fixed per-token cost —
	// first on B itself (tiny relations, BFVP instances via Thm 4.4).
	ev, err := grammar.NewWordEvaluator(db, []logic.Var{"x"})
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	fmt.Printf("%8s %12s %14s %8s\n", "|word|", "stack-pass", "ns/token", "value")
	for _, target := range []int{64, 512, 4096} {
		var bf prop.Formula = prop.Const(true)
		for prop.Size(bf) < target {
			bf = prop.And{L: bf, R: prop.Or{L: prop.Const(r.Intn(2) == 0), R: prop.Not{F: prop.Const(r.Intn(2) == 0)}}}
		}
		fo, err := boolexpr.ToFO(bf)
		if err != nil {
			log.Fatal(err)
		}
		word, err := grammar.Compile(fo)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		serial, err := ev.Eval(word)
		if err != nil {
			log.Fatal(err)
		}
		tSerial := time.Since(start).Round(time.Microsecond)
		val, _ := boolexpr.Eval(bf)
		if serial.IsEmpty() == val {
			log.Fatal("stack pass computed the wrong value")
		}
		fmt.Printf("%8d %12s %14.1f %8v\n", len(word), tSerial,
			float64(tSerial.Nanoseconds())/float64(len(word)), val)
	}

	// Parallel evaluation along the bracket tree pays off once the fixed
	// database — and with it each algebra operation — is large enough.
	big := buildBigDB(512)
	evBig, err := grammar.NewWordEvaluator(big, []logic.Var{"x", "y"})
	if err != nil {
		log.Fatal(err)
	}
	bigWord := wideWord(10, 7)
	start := time.Now()
	bigSerial, err := evBig.Eval(bigWord)
	if err != nil {
		log.Fatal(err)
	}
	bigSerialT := time.Since(start).Round(time.Millisecond)
	start = time.Now()
	parallel, err := evBig.EvalParallel(bigWord)
	if err != nil {
		log.Fatal(err)
	}
	tParallel := time.Since(start).Round(time.Millisecond)
	if !bigSerial.Equal(parallel) {
		log.Fatal("serial and parallel evaluation disagree")
	}
	fmt.Printf("\nlarger fixed B (512 elements, 256k-bit relations), word of %d tokens:\n", len(bigWord))
	fmt.Printf("  serial %v, parallel %v on %d core(s) — identical results\n",
		bigSerialT, tParallel, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("  (single core: the parallel pass only demonstrates correctness here;")
		fmt.Println("   sibling subtrees split across cores when there are any)")
	}
	fmt.Println("\nOnce B is fixed, evaluating a query costs a constant per token — the")
	fmt.Println("down-to-earth face of the ALOGTIME bound (Thm 4.1, Cor 4.3, Buss 1987) —")
	fmt.Println("and sibling subtrees of the bracket tree evaluate independently.")
}

// buildBigDB is a larger fixed structure: a sparse random graph.
func buildBigDB(n int) *database.Database {
	r := rand.New(rand.NewSource(99))
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
		b.Add("E", i, r.Intn(n))
		if i%3 == 0 {
			b.Add("P", i)
		}
	}
	return b.MustBuild()
}

// wideWord compiles a wide, deep formula over E and P.
func wideWord(breadth, depth int) []string {
	var build func(d int) logic.Formula
	build = func(d int) logic.Formula {
		if d == 0 {
			return logic.R("P", "x")
		}
		return logic.Or(logic.And(build(d-1), build(d-1)), logic.R("E", "x", "y"))
	}
	f := build(depth)
	for i := 1; i < breadth; i++ {
		f = logic.Or(f, build(depth))
	}
	word, err := grammar.Compile(f)
	if err != nil {
		log.Fatal(err)
	}
	return word
}
