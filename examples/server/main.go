// Serving walkthrough: drive bvqd's HTTP API through its three behaviors —
// result caching, single-flight coalescing of concurrent identical
// requests, and deadline cancellation with partial statistics.
//
// Self-contained by default (starts an in-process server over
// examples/data-style databases); point it at a running daemon with
//
//	go run ./cmd/bvqd -db graph=examples/data/graph.db -ordered &
//	go run ./examples/server -addr localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro"
	"repro/internal/database"
	"repro/internal/server"
)

var addr = flag.String("addr", "", "host:port of a running bvqd (empty: start in-process)")

func main() {
	flag.Parse()
	base := *addr
	if base == "" {
		base = startInProcess()
	}
	base = "http://" + base

	fmt.Println("== 1. Cold query, then a cache hit")
	two := map[string]any{
		"database": "graph",
		"query":    "(x, y). exists z. E(x, z) & E(z, y)",
	}
	for i := 0; i < 2; i++ {
		r := post(base, two)
		fmt.Printf("   answer=%v plan_cached=%v result_cached=%v\n",
			r["answer"], r["plan_cached"], r["result_cached"])
	}

	fmt.Println("== 2. Eight concurrent identical slow queries coalesce onto one evaluation")
	// The binary-counter PFP query: 2^14 stages over the 14-element ordered
	// domain — slow enough that concurrent requests pile onto the leader.
	slow := map[string]any{
		"database": "counter",
		"query": "(x). [pfp S(x). (!S(x) & forall y. (Less(y, x) -> (exists x. x = y & S(x)))) | " +
			"(S(x) & exists y. (Less(y, x) & !(exists x. x = y & S(x))))](x)",
	}
	var wg sync.WaitGroup
	coalesced := 0
	var mu sync.Mutex
	start := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := post(base, slow)
			mu.Lock()
			if r["coalesced"] == true || r["result_cached"] == true {
				coalesced++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Printf("   8 requests, %d served by another's evaluation, wall time %v\n",
		coalesced, time.Since(start).Round(time.Millisecond))

	fmt.Println("== 3. A deadline cancels mid-fixpoint: 504 with partial stats")
	slow["database"] = "bigcounter" // 2^18 stages: seconds of work
	slow["timeout_ms"] = 50
	slow["no_cache"] = true
	status, body := postRaw(base, slow)
	var errResp struct {
		Error string `json:"error"`
		Stats struct {
			FixIterations int64 `json:"fix_iterations"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &errResp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   status=%d error=%q\n   fixpoint iterations completed before the deadline: %d\n",
		status, errResp.Error, errResp.Stats.FixIterations)

	fmt.Println("== 4. The counters after all of the above")
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	for _, k := range []string{"queries", "timeouts", "coalesced", "plan_cache", "result_cache"} {
		fmt.Printf("   %-13s %v\n", k, stats[k])
	}
}

// startInProcess builds the same databases `make serve` loads, plus two
// ordered counter domains, and serves them from this process.
func startInProcess() string {
	graph, err := bvq.ParseDatabase(`
domain = {10, 20, 30, 40, 50, 60}
E/2 = {(10, 20), (20, 30), (30, 40), (40, 50), (50, 60), (20, 50)}
P/1 = {(10)}
`)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Databases: map[string]*database.Database{
			"graph":      graph,
			"counter":    orderedDomain(14),
			"bigcounter": orderedDomain(18),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	fmt.Println("in-process server at", ts.URL)
	return ts.URL[len("http://"):]
}

func orderedDomain(n int) *database.Database {
	b := database.NewBuilder()
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	db, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	odb, err := db.WithOrder()
	if err != nil {
		log.Fatal(err)
	}
	return odb
}

func post(base string, req map[string]any) map[string]any {
	status, body := postRaw(base, req)
	if status != http.StatusOK {
		log.Fatalf("POST /query: %d %s", status, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		log.Fatal(err)
	}
	return out
}

func postRaw(base string, req map[string]any) (int, []byte) {
	payload, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, body
}
