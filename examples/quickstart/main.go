// Quickstart: build a database, parse bounded-variable queries, and run
// them through several engines of the public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A small social graph: Follows edges and a Verified flag.
	db, err := bvq.NewDatabase().
		Relation("Follows", 2).
		Add("Follows", 1, 2).Add("Follows", 2, 3).Add("Follows", 3, 1).
		Add("Follows", 3, 4).Add("Follows", 4, 5).
		Relation("Verified", 1).
		Add("Verified", 1).Add("Verified", 5).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("Database:\n", db)

	// An FO³ query: pairs connected by a path of length 2, using only
	// three variables.
	q, err := bvq.ParseQuery("(x, y). exists z. Follows(x, z) & Follows(z, y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQuery: %s  (width %d)\n", q, bvq.Width(q))
	for _, engine := range []bvq.Engine{bvq.EngineBottomUp, bvq.EngineNaive, bvq.EngineAlgebra} {
		ans, err := bvq.Eval(q, db, engine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s → %d tuples: %s\n", engine, ans.Len(), ans)
	}

	// A fixpoint query: everyone transitively followed by a verified user,
	// still within three variables.
	reach, err := bvq.ParseQuery(
		"(u). [lfp S(x). Verified(x) | (exists z. Follows(z, x) & (exists x. x = z & S(x)))](u)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFixpoint query: %s\n", reach)
	ans, err := bvq.Eval(reach, db, bvq.EngineBottomUp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  reachable from a verified user: %s\n", ans)

	// Certify the fixpoint evaluation (Theorem 3.5): the prover emits
	// under-approximation chains; the polynomial verifier replays them.
	cert, proved, err := bvq.FindCertificate(reach, db)
	if err != nil {
		log.Fatal(err)
	}
	verified, err := bvq.VerifyCertificate(reach, db, cert)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  certificate verified: prover %s, verifier %s, agree: %v\n",
		proved, verified, proved.Equal(verified))

	// An ESO query: is the follows graph 2-colorable?
	two, err := bvq.ParseQuery("(). exists2 C/1. forall x. forall y. Follows(x, y) -> !(C(x) <-> C(y))")
	if err != nil {
		log.Fatal(err)
	}
	sat, err := bvq.Eval(two, db, bvq.EngineESO)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2-colorable: %v (it has a 3-cycle, so it should not be)\n", sat.Len() > 0)
}
