// Largegraph: the n^k wall and the sparse backend that breaks it. A width-3
// query over a 50,000-node domain denotes subsets of a 50,000³-point space —
// 1.25 × 10¹⁴ bits, about 14 TiB, four orders of magnitude past what the
// dense full-width engine of Proposition 3.1 can allocate. Yet the query
// itself only ever touches a few hundred thousand tuples: on sparse data the
// paper's nᵏ bound is a worst case, not a cost floor. The adaptive backend
// evaluates the same compiled plan over sorted tuple blocks (and routes
// acyclic conjunctive queries through the Yannakakis semijoin pipeline), so
// the answer arrives in milliseconds inside a few dozen megabytes.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/workload"
)

func main() {
	const n = 50000

	// A random digraph with 250,000 edges: density 250000/n² = 10⁻⁴. Each
	// node has ~5 neighbors — the space is astronomically bigger than the
	// data, which is exactly the regime the sparse backend exists for.
	random := workload.SparseDigraph(1, n, 5)
	// A forest of 8-node paths: bounded reachability, so even transitive
	// closure stays small (≤ 8n pairs) on a 50,000-node domain.
	forest := workload.ForestGraph(n, 8)

	// Two-hop neighborhoods of the ~500 P-marked source nodes: an acyclic
	// conjunctive query whose Yannakakis evaluation semijoins the 250,000
	// edges down to the few that matter before joining.
	twoHop := logic.MustQuery([]logic.Var{"x", "y"},
		logic.Exists(logic.And(logic.R("P", "x"),
			logic.And(logic.R("E", "x", "z"), logic.R("E", "z", "y"))), "z"))
	tc := logic.MustQuery([]logic.Var{"x", "y"},
		logic.Lfp("T", []logic.Var{"x", "y"},
			logic.Or(logic.R("E", "x", "y"),
				logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
			"x", "y"))

	// The dense engine cannot even allocate the space — the n^k wall is a
	// hard error, not a slowdown.
	_, _, err := eval.CompiledStats(twoHop, random, &eval.Options{Backend: eval.BackendDense})
	if err == nil {
		log.Fatal("dense backend unexpectedly accepted a 50000^3 space")
	}
	fmt.Printf("dense backend at n=%d: %v\n\n", n, err)

	// The same queries through the adaptive backend (auto routes them
	// sparse: the space is infeasible, the data is not).
	start := time.Now()
	ans, st, err := eval.CompiledStats(twoHop, random, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-hop from the P-sources over %d random edges: %d pairs in %s\n",
		250000, ans.Len(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  acyclic fast path: %d (Yannakakis semijoin pipeline)\n", st.AcyclicFastPath)
	fmt.Printf("  tuples touched: %d — versus the 1.25e14 points of the dense space\n\n",
		st.TuplesTouched)

	start = time.Now()
	ans, st, err = eval.CompiledStats(tc, forest, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transitive closure over the %d-node forest: %d pairs in %s\n",
		n, ans.Len(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  fixpoint stages: %d, tuples touched: %d\n",
		st.FixIterations, st.TuplesTouched)
	fmt.Println("\nthe nᵏ bound of Proposition 3.1 is a worst case, not a cost floor:")
	fmt.Println("on sparse data the same compiled plan evaluates in the size of what")
	fmt.Println("it touches, and acyclic joins skip the k-dimensional space entirely.")
}
