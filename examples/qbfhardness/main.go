// Qbfhardness: Theorem 4.6 live. QBF validity — the canonical
// PSPACE-complete problem — reduces to evaluating partial-fixpoint queries
// with TWO individual variables over the FIXED two-element database
// B₀ = ({0,1}; P = {0}). The database never changes; only the query grows,
// which is what makes this an *expression*-complexity lower bound.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/prop"
	"repro/internal/qbf"
)

func main() {
	db := qbf.FixedDatabase()
	fmt.Println("fixed database B₀:")
	fmt.Print(db)
	fmt.Println()

	// A concrete instance first: ∀p1 ∃p2 (p1 ↔ p2) — valid.
	iff := prop.Or{
		L: prop.And{L: prop.Var(1), R: prop.Var(2)},
		R: prop.And{L: prop.Not{F: prop.Var(1)}, R: prop.Not{F: prop.Var(2)}},
	}
	in := &qbf.Instance{
		Prefix: []qbf.Quantifier{{Forall: true, Var: 1}, {Var: 2}},
		Matrix: iff,
	}
	q, err := qbf.ToPFP(in)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := eval.BottomUp(q, db)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := in.Solve()
	fmt.Printf("%s\n  → PFP² query of size %d, width %d; evaluates to %v (solver says %v)\n\n",
		in, logic.Size(q.Body), q.Width(), ans.Len() > 0, want)

	// Now the sweep: query size grows linearly with the number of
	// quantifiers, evaluation time over the fixed B₀ exponentially.
	fmt.Printf("%3s %8s %8s %12s %12s %7s\n", "l", "|query|", "width", "pfp eval", "direct", "agree")
	for _, l := range []int{1, 2, 3, 4, 5, 6} {
		r := rand.New(rand.NewSource(int64(l) * 7))
		in := qbf.Random(r, l, 3)
		q, err := qbf.ToPFP(in)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ans, err := eval.BottomUp(q, db)
		if err != nil {
			log.Fatal(err)
		}
		tEval := time.Since(start).Round(time.Microsecond)
		start = time.Now()
		want, err := in.Solve()
		if err != nil {
			log.Fatal(err)
		}
		tDirect := time.Since(start).Round(time.Microsecond)
		fmt.Printf("%3d %8d %8d %12s %12s %7v\n",
			l, logic.Size(q.Body), q.Width(), tEval, tDirect, (ans.Len() > 0) == want)
	}
	fmt.Println("\nEvery row: the same two-element database, a linearly larger query,")
	fmt.Println("exponentially more evaluation work — PSPACE-hardness of PFP² expression")
	fmt.Println("complexity, exactly as Table 3 classifies it.")
}
