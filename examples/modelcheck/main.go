// Modelcheck: the paper's §1 verification application. A finite-state
// program (a two-process mutual-exclusion protocol) is a relational
// database of unary and binary relations; verifying its µ-calculus
// specifications amounts to evaluating FP² queries — and the Theorem 3.5
// certificate machinery gives the NP∩co-NP model-checking bound.
package main

import (
	"fmt"
	"log"

	"repro/internal/logic"
	"repro/internal/mucalc"
)

func main() {
	k := buildMutex()
	fmt.Printf("mutual-exclusion protocol: %d states, propositions %v\n\n", k.States(), k.Props())

	specs := []struct {
		name string
		f    mucalc.Formula
	}{
		{"safety: AG ¬(c0 ∧ c1)", mucalc.AG(mucalc.Disj{L: mucalc.NegProp{Name: "c0"}, R: mucalc.NegProp{Name: "c1"}})},
		{"possibility: EF c0", mucalc.EF(mucalc.Prop{Name: "c0"})},
		{"liveness(∃): inf. often c0", mucalc.InfinitelyOften(mucalc.Prop{Name: "c0"})},
		{"invariantly possible: AG EF c0", mucalc.AG(mucalc.EF(mucalc.Prop{Name: "c0"}))},
	}

	for _, s := range specs {
		direct, err := mucalc.Check(k, s.f)
		if err != nil {
			log.Fatal(err)
		}
		viaFP2, err := mucalc.CheckViaFP2(k, s.f)
		if err != nil {
			log.Fatal(err)
		}
		states, cert, err := mucalc.CheckCertified(k, s.f)
		if err != nil {
			log.Fatal(err)
		}
		agree := direct.Equal(viaFP2) && direct.Equal(states)
		q, _ := mucalc.FP2Query(s.f)
		fmt.Printf("%-30s holds at s0: %-5v  (FP² width %d, alternation depth %d, gfp chains %d, engines agree: %v)\n",
			s.name, direct.Test(0), q.Width(), logic.AlternationDepth(q.Body), len(cert.Chains), agree)
	}

	fmt.Println("\nEvery specification was checked three ways: direct µ-calculus semantics,")
	fmt.Println("translation to two-variable fixpoint logic (FP²), and the certified")
	fmt.Println("prover/verifier pair of Theorem 3.5.")
}

// buildMutex constructs the 9-state interleaving of two processes cycling
// idle → try → crit, with the critical section mutually excluded.
func buildMutex() *mucalc.Kripke {
	const (
		idle = 0
		try  = 1
		crit = 2
	)
	id := func(p, q int) int { return p*3 + q }
	step := func(s int) int { return (s + 1) % 3 }
	k := mucalc.NewKripke(9)
	for p := 0; p < 3; p++ {
		for q := 0; q < 3; q++ {
			if p2 := step(p); !(p2 == crit && q == crit) {
				k.AddEdge(id(p, q), id(p2, q))
			}
			if q2 := step(q); !(q2 == crit && p == crit) {
				k.AddEdge(id(p, q), id(p, q2))
			}
			if p == crit {
				k.Label(id(p, q), "c0")
			}
			if q == crit {
				k.Label(id(p, q), "c1")
			}
		}
	}
	return k
}
