// Reachability: the §2.2 variable-reuse example. "x reaches y in exactly m
// steps" is naively an (m+1)-variable query; reusing variables expresses it
// in FO³. The generic (naive) evaluator is exponential in the quantifier
// nesting either way — bounding the number of variables pays off only with
// the bottom-up algorithm of Proposition 3.1, which evaluates the FO³ form
// in time linear in m. A Datalog transitive closure cross-checks answers.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/datalog"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/queryopt"
	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	small := workload.LineGraph(10)
	fmt.Println("generic (naive) evaluation, 10-node line graph — exponential in m:")
	fmt.Printf("%3s  %15s  %15s\n", "m", "naive, m+1 vars", "naive, 3 vars")
	for _, m := range []int{2, 3, 4} {
		narrow, err := queryopt.ChainToFO3(m)
		if err != nil {
			log.Fatal(err)
		}
		tWide := timeIt(func() { mustEval(eval.Naive, wideQuery(m), small) })
		tNarrow := timeIt(func() { mustEval(eval.Naive, narrow, small) })
		fmt.Printf("%3d  %15s  %15s\n", m, tWide, tNarrow)
	}

	big := workload.LineGraph(64)
	fmt.Println("\nbounded-variable bottom-up evaluation (Prop. 3.1), 64-node line graph —")
	fmt.Println("linear in m at fixed width 3:")
	fmt.Printf("%4s  %12s  %8s\n", "m", "bottomup", "answers")
	for _, m := range []int{4, 16, 32, 63} {
		narrow, err := queryopt.ChainToFO3(m)
		if err != nil {
			log.Fatal(err)
		}
		var ans *relation.Set
		t := timeIt(func() { ans = mustEval(eval.BottomUp, narrow, big) })
		fmt.Printf("%4d  %12s  %8d\n", m, t, ans.Len())
	}

	// Correctness cross-check at m = 4 on the small graph, including the
	// Datalog transitive closure.
	m := 4
	narrow, _ := queryopt.ChainToFO3(m)
	ansBU := mustEval(eval.BottomUp, narrow, small)
	ansNaive := mustEval(eval.Naive, wideQuery(m), small)
	if !ansBU.Equal(ansNaive) {
		log.Fatal("wide and narrow forms disagree")
	}
	prog := &datalog.Program{Rules: []datalog.Rule{
		{Head: datalog.A("R", datalog.V("x"), datalog.V("y")),
			Body: []datalog.Atom{datalog.A("E", datalog.V("x"), datalog.V("y"))}},
		{Head: datalog.A("R", datalog.V("x"), datalog.V("y")),
			Body: []datalog.Atom{datalog.A("E", datalog.V("x"), datalog.V("z")), datalog.A("R", datalog.V("z"), datalog.V("y"))}},
	}}
	idb, err := prog.Eval(small)
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	ansBU.ForEach(func(t relation.Tuple) {
		if !idb["R"].Contains(t) {
			ok = false
		}
	})
	fmt.Printf("\nm=%d: %d pairs, all contained in the Datalog transitive closure: %v\n",
		m, ansBU.Len(), ok)
}

func mustEval(engine func(logic.Query, *bvq.Database) (*relation.Set, error), q bvq.Query, db *bvq.Database) *relation.Set {
	ans, err := engine(q, db)
	if err != nil {
		log.Fatal(err)
	}
	return ans
}

// wideQuery builds the naive (m+1)-variable form:
// ∃z₁…z_{m−1} (E(x,z₁) ∧ … ∧ E(z_{m−1},y)).
func wideQuery(m int) bvq.Query {
	vars := make([]logic.Var, m+1)
	vars[0] = "x"
	vars[m] = "y"
	for i := 1; i < m; i++ {
		vars[i] = logic.Var(fmt.Sprintf("z%d", i))
	}
	conj := make([]logic.Formula, m)
	for i := 0; i < m; i++ {
		conj[i] = logic.R("E", vars[i], vars[i+1])
	}
	return logic.MustQuery([]logic.Var{"x", "y"}, logic.Exists(logic.And(conj...), vars[1:m]...))
}

func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start).Round(10 * time.Microsecond)
}
