package bvq

import (
	"reflect"
	"testing"

	"repro/internal/mucalc"
)

func lineKripke(t *testing.T) *Kripke {
	t.Helper()
	k := NewKripke(4)
	for i := 0; i+1 < 4; i++ {
		if err := k.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Label(3, "goal"); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestModelCheckFacade(t *testing.T) {
	k := lineKripke(t)
	f, err := ParseMu("mu X. (goal | <>X)") // EF goal
	if err != nil {
		t.Fatal(err)
	}
	states, err := ModelCheck(k, f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(states, []int{0, 1, 2, 3}) {
		t.Fatalf("EF goal = %v", states)
	}
	certified, cert, err := ModelCheckCertified(k, f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(certified, states) {
		t.Fatalf("certified states = %v", certified)
	}
	if cert == nil {
		t.Fatal("nil certificate")
	}
}

func TestModelCheckCTLFacade(t *testing.T) {
	k := lineKripke(t)
	states, err := ModelCheckCTL(k, mucalc.EF_{F: mucalc.CTLProp{Name: "goal"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(states, []int{0, 1, 2, 3}) {
		t.Fatalf("CTL EF goal = %v", states)
	}
	// AG goal holds only at the (deadlocked) goal state.
	states, err = ModelCheckCTL(k, mucalc.AG_{F: mucalc.CTLProp{Name: "goal"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(states, []int{3}) {
		t.Fatalf("CTL AG goal = %v", states)
	}
}

func TestModelCheckRejectsBadFormula(t *testing.T) {
	k := lineKripke(t)
	if _, err := ModelCheck(k, mucalc.VarRef{Name: "X"}); err == nil {
		t.Fatal("unbound variable accepted")
	}
}
