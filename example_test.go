package bvq_test

import (
	"fmt"
	"log"

	"repro"
)

// The godoc examples double as end-to-end smoke tests of the public API.

func exampleDB() *bvq.Database {
	db, err := bvq.ParseDatabase(`
domain = {0, 1, 2, 3}
E/2 = {(0, 1), (1, 2), (2, 3)}
P/1 = {(0)}
`)
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func ExampleEval() {
	db := exampleDB()
	q, _ := bvq.ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	ans, _ := bvq.Eval(q, db, bvq.EngineBottomUp)
	fmt.Println(ans)
	// Output: {(0, 2), (1, 3)}
}

func ExampleEval_fixpoint() {
	db := exampleDB()
	q, _ := bvq.ParseQuery(
		"(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)")
	ans, _ := bvq.Eval(q, db, bvq.EngineBottomUp)
	fmt.Println(ans)
	// Output: {(0), (1), (2), (3)}
}

func ExampleFindCertificate() {
	db := exampleDB()
	q, _ := bvq.ParseQuery(
		"(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)")
	cert, proved, _ := bvq.FindCertificate(q, db)
	verified, _ := bvq.VerifyCertificate(q, db, cert)
	fmt.Println(proved.Equal(verified))
	// Output: true
}

func ExampleEval_eso() {
	db := exampleDB()
	// Is the graph 2-colorable? (A line always is.)
	q, _ := bvq.ParseQuery("(). exists2 C/1. forall x. forall y. E(x,y) -> !(C(x) <-> C(y))")
	ans, _ := bvq.Eval(q, db, bvq.EngineESO)
	fmt.Println(ans.Len() > 0)
	// Output: true
}

func ExampleWidth() {
	q, _ := bvq.ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	fmt.Println(bvq.Width(q))
	// Output: 3
}

func ExampleMinimizeWidth() {
	// A length-4 path query: naively 5 variables, minimized to 3.
	q := &bvq.ConjunctiveQuery{
		Head: []bvq.Var{"a", "e"},
		Atoms: []bvq.CQAtom{
			{Rel: "E", Vars: []bvq.Var{"a", "b"}},
			{Rel: "E", Vars: []bvq.Var{"b", "c"}},
			{Rel: "E", Vars: []bvq.Var{"c", "d"}},
			{Rel: "E", Vars: []bvq.Var{"d", "e"}},
		},
	}
	_, width, _ := bvq.MinimizeWidth(q)
	fmt.Println(width)
	// Output: 3
}
