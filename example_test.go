package bvq_test

import (
	"context"
	"errors"
	"time"

	"fmt"
	"log"

	"repro"
)

// The godoc examples double as end-to-end smoke tests of the public API.

func exampleDB() *bvq.Database {
	db, err := bvq.ParseDatabase(`
domain = {0, 1, 2, 3}
E/2 = {(0, 1), (1, 2), (2, 3)}
P/1 = {(0)}
`)
	if err != nil {
		log.Fatal(err)
	}
	return db
}

func ExampleEval() {
	db := exampleDB()
	q, _ := bvq.ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	ans, _ := bvq.Eval(q, db, bvq.EngineBottomUp)
	fmt.Println(ans)
	// Output: {(0, 2), (1, 3)}
}

func ExampleEval_fixpoint() {
	db := exampleDB()
	q, _ := bvq.ParseQuery(
		"(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)")
	ans, _ := bvq.Eval(q, db, bvq.EngineBottomUp)
	fmt.Println(ans)
	// Output: {(0), (1), (2), (3)}
}

func ExampleFindCertificate() {
	db := exampleDB()
	q, _ := bvq.ParseQuery(
		"(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)")
	cert, proved, _ := bvq.FindCertificate(q, db)
	verified, _ := bvq.VerifyCertificate(q, db, cert)
	fmt.Println(proved.Equal(verified))
	// Output: true
}

func ExampleEval_eso() {
	db := exampleDB()
	// Is the graph 2-colorable? (A line always is.)
	q, _ := bvq.ParseQuery("(). exists2 C/1. forall x. forall y. E(x,y) -> !(C(x) <-> C(y))")
	ans, _ := bvq.Eval(q, db, bvq.EngineESO)
	fmt.Println(ans.Len() > 0)
	// Output: true
}

func ExampleWidth() {
	q, _ := bvq.ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	fmt.Println(bvq.Width(q))
	// Output: 3
}

func ExampleMinimizeWidth() {
	// A length-4 path query: naively 5 variables, minimized to 3.
	q := &bvq.ConjunctiveQuery{
		Head: []bvq.Var{"a", "e"},
		Atoms: []bvq.CQAtom{
			{Rel: "E", Vars: []bvq.Var{"a", "b"}},
			{Rel: "E", Vars: []bvq.Var{"b", "c"}},
			{Rel: "E", Vars: []bvq.Var{"c", "d"}},
			{Rel: "E", Vars: []bvq.Var{"d", "e"}},
		},
	}
	_, width, _ := bvq.MinimizeWidth(q)
	fmt.Println(width)
	// Output: 3
}

func ExampleParseDatabase() {
	db, err := bvq.ParseDatabase(`
domain = {10, 20, 30}
E/2 = {(10, 20), (20, 30)}
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(db.Size(), db.Names())
	// Output: 3 [E]
}

func ExampleParseQuery() {
	q, err := bvq.ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.Arity(), bvq.Width(q))
	// Output: 2 3
}

func ExampleEvalContext() {
	db := exampleDB()
	q, _ := bvq.ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	// A deadline bounds the evaluation; cancellation is observed at
	// iteration boundaries, so any returned answer is byte-identical to an
	// uncancelled run. An already-expired context cancels before any work.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	ans, err := bvq.EvalContext(ctx, q, db, bvq.EngineBottomUp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans)

	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	_, err = bvq.EvalContext(cancelled, q, db, bvq.EngineBottomUp)
	fmt.Println(errors.Is(err, context.Canceled))
	// Output:
	// {(0, 2), (1, 3)}
	// true
}

func ExampleVerifyCertificate() {
	db := exampleDB()
	q, _ := bvq.ParseQuery(
		"(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)")
	cert, _, _ := bvq.FindCertificate(q, db)
	// The verifier replays the evaluation against the certificate's chains
	// in l·nᵏ stages — the cheap half of the Theorem 3.5 NP ∩ co-NP bound.
	ans, err := bvq.VerifyCertificate(q, db, cert)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans)
	// Output: {(0), (1), (2), (3)}
}

func ExampleEngineByName() {
	for _, name := range []string{"bottomup", "naive", "algebra", "monotone", "eso", "certified"} {
		e, err := bvq.EngineByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(e)
	}
	_, err := bvq.EngineByName("warpdrive")
	fmt.Println(err != nil)
	// Output:
	// bottomup
	// naive
	// algebra
	// monotone
	// eso
	// certified
	// true
}

func ExampleHolds() {
	db := exampleDB()
	f, _ := bvq.ParseFormula("exists x. P(x)")
	holds, err := bvq.Holds(f, db, bvq.EngineBottomUp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(holds)
	// Output: true
}

func ExampleModelCheck() {
	// A three-state cycle where p holds in state 0: "infinitely often p"
	// holds everywhere on the cycle.
	k := bvq.NewKripke(3)
	k.AddEdge(0, 1)
	k.AddEdge(1, 2)
	k.AddEdge(2, 0)
	k.Label(0, "p")
	f, _ := bvq.ParseMu("nu X. mu Y. ((p & <>X) | <>Y)")
	states, err := bvq.ModelCheck(k, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(states)
	// Output: [0 1 2]
}

func ExampleDatabase_Apply() {
	db := exampleDB() // path 0→1→2→3, P = {0}
	reach, _ := bvq.ParseQuery("(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)")
	before, _ := bvq.Eval(reach, db, bvq.EngineBottomUp)

	// Apply never mutates: it returns a new snapshot plus the effective
	// delta. Holders of the old snapshot (in-flight queries, caches) keep
	// evaluating against byte-identical data.
	next, delta, err := db.Apply([]bvq.Update{
		{Relation: "E", Insert: []bvq.Tuple{{3, 0}}, Delete: []bvq.Tuple{{0, 1}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	after, _ := bvq.Eval(reach, next, bvq.EngineBottomUp)

	ins, del := delta.Counts()
	fmt.Println("changed:", delta.Relations(), "inserted:", ins, "deleted:", del)
	fmt.Println("versions:", db.Version(), "->", next.Version())
	fmt.Println("old snapshot still:", before)
	fmt.Println("new snapshot:", after)
	// Output:
	// changed: [E] inserted: 1 deleted: 1
	// versions: 0 -> 1
	// old snapshot still: {(0), (1), (2), (3)}
	// new snapshot: {(0)}
}
