package bvq

import (
	"sort"

	"repro/internal/mucalc"
)

// Model checking (the paper's §1 application): a finite-state program is a
// Kripke structure — a database of unary and binary relations — and
// verifying a µ-calculus specification is FP² query evaluation.

type (
	// Kripke is a finite-state transition system with propositional labels.
	Kripke = mucalc.Kripke
	// MuFormula is a µ-calculus formula in positive normal form.
	MuFormula = mucalc.Formula
	// CTLFormula is a branching-time (CTL) formula; CTL is the
	// alternation-free fragment of the µ-calculus in practice.
	CTLFormula = mucalc.CTL
)

// NewKripke returns a structure with n states and no transitions.
func NewKripke(n int) *Kripke { return mucalc.NewKripke(n) }

// ParseMu parses µ-calculus syntax: "mu X. (p | <>X)", "nu X. (p & []X)".
func ParseMu(text string) (MuFormula, error) { return mucalc.ParseMu(text) }

// ModelCheck returns the sorted states of k satisfying f, computed through
// the FP² translation and the bounded-variable bottom-up evaluator.
func ModelCheck(k *Kripke, f MuFormula) ([]int, error) {
	set, err := mucalc.CheckViaFP2(k, f)
	if err != nil {
		return nil, err
	}
	var out []int
	set.ForEach(func(s int) { out = append(out, s) })
	sort.Ints(out)
	return out, nil
}

// ModelCheckCertified model-checks through the Theorem 3.5 prover/verifier
// pair and returns the sorted satisfying states together with the verified
// certificate.
func ModelCheckCertified(k *Kripke, f MuFormula) ([]int, *Certificate, error) {
	set, cert, err := mucalc.CheckCertified(k, f)
	if err != nil {
		return nil, nil, err
	}
	var out []int
	set.ForEach(func(s int) { out = append(out, s) })
	sort.Ints(out)
	return out, cert, nil
}

// ModelCheckCTL checks a CTL formula by translating it into the µ-calculus.
func ModelCheckCTL(k *Kripke, f CTLFormula) ([]int, error) {
	mu, err := mucalc.CTLToMu(f)
	if err != nil {
		return nil, err
	}
	return ModelCheck(k, mu)
}
